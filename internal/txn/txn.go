// Package txn implements multi-session snapshot-isolation transactions over
// the table layer (§1.2's "data warehouses still need transactions"; the
// mechanics follow the Hekaton MVCC design by the same authors): a monotonic
// commit-timestamp clock, per-transaction snapshots, first-writer-wins
// conflict resolution (surfaced by the table layer as ErrWriteConflict), and
// a commit pipeline that logs one TCommit record per transaction and rides
// the WAL's cross-session group commit for durability.
//
// The manager is the single authority on timestamps. Tables see it through
// the table.Clock interface; the visibility rules themselves live in
// internal/delta. Lock order: Manager.commitMu > table locks > Manager.mu —
// the clock methods (called under table locks) take only mu, and mu never
// acquires anything.
package txn

import (
	"context"
	"errors"
	"sort"
	"sync"

	"apollo/internal/delta"
	"apollo/internal/metrics"
	"apollo/internal/table"
	"apollo/internal/wal"
)

// ErrClosed is returned by Begin, Commit, and DML helpers once the manager
// has shut down (DB.Close aborts every in-flight transaction).
var ErrClosed = errors.New("database closed")

// ErrTxnDone is returned when a transaction is used after Commit or Rollback.
var ErrTxnDone = errors.New("transaction already finished")

var (
	mCommits = metrics.Default.Counter("apollo_txn_commits_total",
		"transactions committed")
	mAborts = metrics.Default.Counter("apollo_txn_aborts_total",
		"transactions rolled back (explicit or conflict)")
	mConflicts = metrics.Default.Counter("apollo_txn_conflicts_total",
		"write-write conflicts surfaced to sessions")
)

// Manager owns transaction ids, commit timestamps, and the active-snapshot
// registry that drives the settling horizon. One Manager serves one database.
type Manager struct {
	w *wal.Writer // may be nil (non-durable database)

	// commitMu serializes the commit pipeline: TCommit append, version flips,
	// and watermark release happen under it, so log order of TCommit records
	// equals commit-timestamp order and a checkpoint can take the lock to get
	// a rotation point no commit straddles.
	commitMu sync.Mutex

	mu            sync.Mutex
	nextID        uint64 // next transaction id (TxnBit-tagged when handed out)
	nextTS        uint64 // next commit timestamp
	lastCommitted uint64 // every commit at or below this is fully applied
	pendingTS     map[uint64]struct{} // allocated, not yet fully applied
	active        map[uint64]*Txn     // in-flight transactions by id
	pins          map[uint64]int      // snapshot read pins: asOf -> refcount
	closed        bool
}

// NewManager creates a manager whose TCommit records go to w (nil for a
// non-durable database).
func NewManager(w *wal.Writer) *Manager {
	return &Manager{
		w:         w,
		nextID:    1,
		nextTS:    1,
		pendingTS: make(map[uint64]struct{}),
		active:    make(map[uint64]*Txn),
		pins:      make(map[uint64]int),
	}
}

// --- table.Clock -----------------------------------------------------------

// StableTS returns the latest fully-applied commit timestamp (the snapshot a
// new reader gets).
func (m *Manager) StableTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastCommitted
}

// Horizon returns the oldest snapshot anything in the system may still read:
// active transactions' snapshots, pinned readers, and (exclusively below) any
// commit timestamp that is allocated but not yet fully applied. Version state
// at or below the horizon can settle. MaxTS when nothing constrains it.
func (m *Manager) Horizon() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := delta.MaxTS
	for _, tx := range m.active {
		if tx.snap < h {
			h = tx.snap
		}
	}
	for asOf := range m.pins {
		if asOf < h {
			h = asOf
		}
	}
	for ts := range m.pendingTS {
		if ts-1 < h {
			h = ts - 1
		}
	}
	return h
}

// AllocCommitTS allocates the next commit timestamp and registers it pending:
// StableTS will not advance past it until FinishCommitTS, so no reader takes
// a snapshot that includes a half-applied write.
func (m *Manager) AllocCommitTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.nextTS
	m.nextTS++
	m.pendingTS[ts] = struct{}{}
	return ts
}

// FinishCommitTS marks ts fully applied and advances the stable watermark to
// just below the oldest still-pending allocation.
func (m *Manager) FinishCommitTS(ts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.pendingTS, ts)
	m.advanceLocked()
}

func (m *Manager) advanceLocked() {
	stable := m.nextTS - 1
	for ts := range m.pendingTS {
		if ts-1 < stable {
			stable = ts - 1
		}
	}
	if stable > m.lastCommitted {
		m.lastCommitted = stable
	}
}

// --- snapshot pins ---------------------------------------------------------

// PinRead registers a snapshot at the current stable timestamp for the
// duration of a query, holding the settling horizon at or below it so the
// tuple mover and version purge cannot disturb rows the query may read.
// Returns the pinned timestamp and a release func (idempotent).
func (m *Manager) PinRead() (uint64, func()) {
	m.mu.Lock()
	asOf := m.lastCommitted
	m.pins[asOf]++
	m.mu.Unlock()
	var once sync.Once
	return asOf, func() {
		once.Do(func() {
			m.mu.Lock()
			if m.pins[asOf]--; m.pins[asOf] <= 0 {
				delete(m.pins, asOf)
			}
			m.mu.Unlock()
		})
	}
}

// Lock and Unlock expose the commit pipeline lock as a sync.Locker, so the
// checkpoint (persist.Barrier) can hold it around the WAL rotation and
// observe a point no commit straddles.
func (m *Manager) Lock()   { m.commitMu.Lock() }
func (m *Manager) Unlock() { m.commitMu.Unlock() }

// --- transactions ----------------------------------------------------------

// Txn is one in-flight transaction: a snapshot, a TxnBit-tagged id, and the
// set of tables it has written. Safe for use by one session at a time (the
// usual sql.Tx discipline); the manager may abort it concurrently on Close.
type Txn struct {
	m    *Manager
	id   uint64
	snap uint64

	mu     sync.Mutex
	tables map[string]*table.Table // tables with provisional effects
	began  bool                    // TBegin logged (lazily, on first write)
	done   bool
	doneErr error // what finished it: nil (commit/rollback) or ErrClosed
}

// Begin starts a transaction reading from the current stable snapshot.
func (m *Manager) Begin(ctx context.Context) (*Txn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	id := delta.TxnBit | m.nextID
	m.nextID++
	tx := &Txn{m: m, id: id, snap: m.lastCommitted, tables: make(map[string]*table.Table)}
	m.active[id] = tx
	return tx, nil
}

// ID returns the TxnBit-tagged transaction id.
func (tx *Txn) ID() uint64 { return tx.id }

// SnapTS returns the transaction's snapshot timestamp.
func (tx *Txn) SnapTS() uint64 { return tx.snap }

// Ref returns the table-layer handle DML calls run under.
func (tx *Txn) Ref() table.TxnRef { return table.TxnRef{ID: tx.id, SnapTS: tx.snap} }

// View returns the read view for queries inside the transaction.
func (tx *Txn) View() table.ReadView { return table.ReadView{AsOf: tx.snap, Self: tx.id} }

// Touch records that the transaction is about to write t, logging the TBegin
// record lazily so read-only transactions leave no trace in the WAL. Call it
// before the table-layer DML.
func (tx *Txn) Touch(t *table.Table) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return tx.finishedErrLocked()
	}
	if !tx.began {
		tx.began = true
		if tx.m.w != nil {
			if _, err := tx.m.w.AppendAsync(&wal.Record{Type: wal.TBegin, Txn: tx.id}); err != nil {
				return err
			}
		}
	}
	tx.tables[t.Name] = t
	return nil
}

func (tx *Txn) finishedErrLocked() error {
	if tx.doneErr != nil {
		return tx.doneErr
	}
	return ErrTxnDone
}

// Done reports whether the transaction has finished (committed, rolled back,
// or aborted by Close).
func (tx *Txn) Done() bool {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.done
}

// Err reports why the transaction ended abnormally (ErrClosed when DB.Close
// aborted it); nil while in flight or after a normal Commit/Rollback.
func (tx *Txn) Err() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.doneErr
}

// tablesSorted snapshots the touched tables in a deterministic order.
func (tx *Txn) tablesSorted() []*table.Table {
	names := make([]string, 0, len(tx.tables))
	for n := range tx.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*table.Table, 0, len(names))
	for _, n := range names {
		out = append(out, tx.tables[n])
	}
	return out
}

// Commit makes the transaction's writes visible at a fresh commit timestamp
// and, when the WAL policy is fsync-always, waits (context-aware) until the
// TCommit record is durable. Commits from concurrent sessions waiting at the
// same time share one fsync (cross-session group commit). On a context
// cancellation during the durability wait the commit IS applied and will be
// durable with the next sync; only the confirmation is abandoned.
func (tx *Txn) Commit(ctx context.Context) error {
	m := tx.m
	m.commitMu.Lock()

	tx.mu.Lock()
	if tx.done {
		err := tx.finishedErrLocked()
		tx.mu.Unlock()
		m.commitMu.Unlock()
		return err
	}
	tx.done = true
	wrote := tx.began
	tables := tx.tablesSorted()
	tx.mu.Unlock()

	m.mu.Lock()
	closed := m.closed
	delete(m.active, tx.id)
	m.mu.Unlock()
	if closed {
		m.commitMu.Unlock()
		// Roll back here too: Close may have skipped this transaction after
		// seeing it already marked done (AbortTxn is idempotent).
		for _, t := range tables {
			t.AbortTxn(tx.id)
		}
		tx.setDoneErr(ErrClosed)
		mAborts.Inc()
		return ErrClosed
	}
	if !wrote {
		// Read-only: nothing to log or flip; dropping the active entry
		// released the snapshot.
		m.commitMu.Unlock()
		mCommits.Inc()
		return nil
	}

	cts := m.AllocCommitTS()
	var target int64
	var appendErr error
	if m.w != nil {
		target, appendErr = m.w.AppendAsync(&wal.Record{Type: wal.TCommit, Txn: tx.id, A: cts})
		if appendErr != nil {
			// The log rejected the commit record: roll back.
			for _, t := range tables {
				t.AbortTxn(tx.id)
			}
			m.FinishCommitTS(cts)
			m.commitMu.Unlock()
			mAborts.Inc()
			return appendErr
		}
	}
	for _, t := range tables {
		t.CommitTxn(tx.id, cts)
	}
	m.FinishCommitTS(cts)
	m.commitMu.Unlock()
	mCommits.Inc()

	if m.w != nil && m.w.Policy() == wal.FsyncAlways {
		return m.w.WaitDurable(ctx, target)
	}
	return nil
}

// Rollback discards the transaction's provisional writes. Safe to call after
// a failed statement; idempotent once the transaction finished.
func (tx *Txn) Rollback(ctx context.Context) error {
	m := tx.m
	tx.mu.Lock()
	already := tx.done
	tx.done = true
	wrote := tx.began && !already
	tables := tx.tablesSorted()
	tx.mu.Unlock()

	m.mu.Lock()
	delete(m.active, tx.id)
	m.mu.Unlock()

	// Abort even when the transaction already finished via Close: a DML call
	// racing the shutdown may have left an intent behind, and AbortTxn is
	// idempotent.
	for _, t := range tables {
		t.AbortTxn(tx.id)
	}
	if already {
		return nil
	}
	if wrote && m.w != nil {
		// Advisory: recovery treats any transaction without a durable TCommit
		// as aborted, so the record only helps log inspection.
		m.w.AppendAsync(&wal.Record{Type: wal.TAbort, Txn: tx.id})
	}
	mAborts.Inc()
	return ctx.Err()
}

func (tx *Txn) setDoneErr(err error) {
	tx.mu.Lock()
	tx.doneErr = err
	tx.mu.Unlock()
}

// ConflictSeen bumps the conflict metric (the SQL layer calls it when
// surfacing ErrWriteConflict to a session).
func (m *Manager) ConflictSeen() { mConflicts.Inc() }

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Close shuts the manager down: new Begin/Commit calls fail with ErrClosed
// and every in-flight transaction is rolled back (its session sees ErrClosed
// from the next call on the transaction). Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	victims := make([]*Txn, 0, len(m.active))
	for _, tx := range m.active {
		victims = append(victims, tx)
	}
	m.active = make(map[uint64]*Txn)
	m.mu.Unlock()

	for _, tx := range victims {
		tx.mu.Lock()
		already := tx.done
		tx.done = true
		tx.doneErr = ErrClosed
		tables := tx.tablesSorted()
		tx.mu.Unlock()
		if already {
			continue
		}
		for _, t := range tables {
			t.AbortTxn(tx.id)
		}
		mAborts.Inc()
	}
}
