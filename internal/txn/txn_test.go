package txn

import (
	"context"
	"errors"
	"testing"

	"apollo/internal/delta"
)

func TestCommitTimestampWatermark(t *testing.T) {
	m := NewManager(nil)
	if got := m.StableTS(); got != 0 {
		t.Fatalf("fresh StableTS = %d, want 0", got)
	}
	a := m.AllocCommitTS()
	b := m.AllocCommitTS()
	if a != 1 || b != 2 {
		t.Fatalf("AllocCommitTS gave %d, %d, want 1, 2", a, b)
	}
	// Finishing the later allocation first must not expose a snapshot that
	// includes b but not a.
	m.FinishCommitTS(b)
	if got := m.StableTS(); got != 0 {
		t.Fatalf("StableTS = %d with ts %d still pending, want 0", got, a)
	}
	m.FinishCommitTS(a)
	if got := m.StableTS(); got != 2 {
		t.Fatalf("StableTS = %d after both finished, want 2", got)
	}
}

func TestHorizon(t *testing.T) {
	m := NewManager(nil)
	ctx := context.Background()
	if got := m.Horizon(); got != delta.MaxTS {
		t.Fatalf("idle horizon = %d, want MaxTS", got)
	}

	// Advance the clock so snapshots are nonzero.
	for i := 0; i < 5; i++ {
		m.FinishCommitTS(m.AllocCommitTS())
	}
	tx, err := m.Begin(ctx) // snap = 5
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Horizon(); got != 5 {
		t.Fatalf("horizon with active txn = %d, want its snapshot 5", got)
	}

	m.FinishCommitTS(m.AllocCommitTS()) // stable = 6
	asOf, release := m.PinRead()
	if asOf != 6 {
		t.Fatalf("PinRead = %d, want 6", asOf)
	}
	pending := m.AllocCommitTS() // ts 7, pending
	if got := m.Horizon(); got != 5 {
		t.Fatalf("horizon = %d, want 5 (oldest constraint is the txn)", got)
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	if got := m.Horizon(); got != 6 {
		t.Fatalf("horizon = %d after txn ended, want 6 (pin and pending ts)", got)
	}
	release()
	if got := m.Horizon(); got != 6 {
		t.Fatalf("horizon = %d, want 6 (pending ts 7 holds it at 6)", got)
	}
	release() // idempotent
	m.FinishCommitTS(pending)
	if got := m.Horizon(); got != delta.MaxTS {
		t.Fatalf("horizon = %d after all constraints gone, want MaxTS", got)
	}
}

func TestReadOnlyCommitAndDone(t *testing.T) {
	m := NewManager(nil)
	ctx := context.Background()
	tx, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID()&delta.TxnBit == 0 {
		t.Fatalf("transaction id %#x missing TxnBit", tx.ID())
	}
	if tx.Done() {
		t.Fatal("fresh transaction reports done")
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if !tx.Done() || tx.Err() != nil {
		t.Fatalf("after commit: done=%v err=%v, want done, nil", tx.Done(), tx.Err())
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("second commit: %v, want ErrTxnDone", err)
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatalf("rollback after commit should be a silent no-op, got %v", err)
	}
	if m.ActiveCount() != 0 {
		t.Fatalf("active count %d, want 0", m.ActiveCount())
	}
}

func TestCloseAbortsActive(t *testing.T) {
	m := NewManager(nil)
	ctx := context.Background()
	tx, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // idempotent
	if !tx.Done() {
		t.Fatal("transaction not aborted by Close")
	}
	if err := tx.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("aborted txn Err = %v, want ErrClosed", err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after Close: %v, want ErrClosed", err)
	}
	if _, err := m.Begin(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("begin after Close: %v, want ErrClosed", err)
	}
	if got := m.Horizon(); got != delta.MaxTS {
		t.Fatalf("horizon = %d after Close, want MaxTS (no snapshots held)", got)
	}
}

func TestBeginHonorsContext(t *testing.T) {
	m := NewManager(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Begin(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("begin with cancelled ctx: %v, want context.Canceled", err)
	}
}
