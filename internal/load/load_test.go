package load

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"apollo/internal/sqltypes"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "id", Typ: sqltypes.Int64, Nullable: true},
		sqltypes.Column{Name: "name", Typ: sqltypes.String, Nullable: true},
		sqltypes.Column{Name: "score", Typ: sqltypes.Float64, Nullable: true},
		sqltypes.Column{Name: "ok", Typ: sqltypes.Bool, Nullable: true},
		sqltypes.Column{Name: "day", Typ: sqltypes.Date, Nullable: true},
	)
}

// fakeSink records what the loader handed it.
type fakeSink struct {
	direct  [][]sqltypes.Row
	delta   [][]sqltypes.Row
	failures int // fail the first N calls with a non-transient error
}

func (f *fakeSink) CompressDirect(rows []sqltypes.Row) (int, error) {
	if f.failures > 0 {
		f.failures--
		return 0, errors.New("sink: injected failure")
	}
	f.direct = append(f.direct, append([]sqltypes.Row(nil), rows...))
	return 1, nil
}

func (f *fakeSink) InsertBatch(_ context.Context, rows []sqltypes.Row) error {
	if f.failures > 0 {
		f.failures--
		return errors.New("sink: injected failure")
	}
	f.delta = append(f.delta, append([]sqltypes.Row(nil), rows...))
	return nil
}

func (f *fakeSink) rows() int {
	n := 0
	for _, b := range f.direct {
		n += len(b)
	}
	for _, b := range f.delta {
		n += len(b)
	}
	return n
}

func csvInput(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d,name-%d,%g,true,2024-03-%02d\n", i, i%7, float64(i)*0.5, 1+i%28)
	}
	return sb.String()
}

func TestLoaderSplitsDirectAndDelta(t *testing.T) {
	sink := &fakeSink{}
	ldr, err := New(sink, Options{RowGroupSize: 100, BulkThreshold: 50, BatchRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	// 230 rows at batch 100: two direct batches of 100, remainder 30 < 50 → delta.
	res, err := ldr.Run(context.Background(), NewCSVReader(strings.NewReader(csvInput(230)), testSchema(), CSVOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsLoaded != 230 || res.RowsDirect != 200 || res.RowsDelta != 30 || res.Groups != 2 {
		t.Fatalf("got %+v, want 230 loaded / 200 direct / 30 delta / 2 groups", res)
	}
	if len(sink.direct) != 2 || len(sink.delta) != 1 {
		t.Fatalf("sink saw %d direct, %d delta batches", len(sink.direct), len(sink.delta))
	}
	if len(res.Batches) != 3 {
		t.Fatalf("expected 3 batch stats, got %d", len(res.Batches))
	}
}

func TestLoaderDeadLettersMalformedRows(t *testing.T) {
	input := "1,a,1.5,true,2024-01-01\n" +
		"not-an-int,b,2.5,true,2024-01-02\n" + // bad BIGINT
		"4,d,4.5,maybe,2024-01-04\n" + // bad BOOLEAN
		"5,e,5.5,false,2024-01-05\n" +
		"too,few,fields\n" + // field-count mismatch
		"3,\"unterminated,3.5,true,2024-01-03\n" // bad quoting (swallows to EOF)
	sink := &fakeSink{}
	ldr, _ := New(sink, Options{RowGroupSize: 100, BulkThreshold: 100})
	res, err := ldr.Run(context.Background(), NewCSVReader(strings.NewReader(input), testSchema(), CSVOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.DeadLetters); got != 4 {
		t.Fatalf("expected 4 dead letters, got %d: %+v", got, res.DeadLetters)
	}
	if res.RowsLoaded != 2 {
		t.Fatalf("accounting off: %d loaded + %d dead from 6 input rows", res.RowsLoaded, len(res.DeadLetters))
	}
}

func TestLoaderDeadLetterCapAborts(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString("bad,x,1.0,true,2024-01-01\n")
	}
	sink := &fakeSink{}
	ldr, _ := New(sink, Options{RowGroupSize: 100, MaxDeadLetters: 3})
	res, err := ldr.Run(context.Background(), NewCSVReader(strings.NewReader(sb.String()), testSchema(), CSVOptions{}))
	if err == nil {
		t.Fatal("expected abort after dead-letter cap")
	}
	if len(res.DeadLetters) != 4 {
		t.Fatalf("expected 4 collected dead letters (cap 3 + the one that tripped it), got %d", len(res.DeadLetters))
	}
}

func TestLoaderZeroCapRejectsFirstBadRow(t *testing.T) {
	input := "1,a,1.0,true,2024-01-01\nbad,b,2.0,true,2024-01-02\n"
	sink := &fakeSink{}
	ldr, _ := New(sink, Options{RowGroupSize: 100, MaxDeadLetters: -1})
	if _, err := ldr.Run(context.Background(), NewCSVReader(strings.NewReader(input), testSchema(), CSVOptions{})); err == nil {
		t.Fatal("expected first malformed row to abort with MaxDeadLetters<0")
	}
}

func TestLoaderNonTransientErrorFails(t *testing.T) {
	sink := &fakeSink{failures: 1}
	ldr, _ := New(sink, Options{RowGroupSize: 50, BulkThreshold: 10})
	_, err := ldr.Run(context.Background(), NewCSVReader(strings.NewReader(csvInput(60)), testSchema(), CSVOptions{}))
	if err == nil {
		t.Fatal("expected non-transient sink failure to abort the load")
	}
}

func TestCSVNullsAndQuoting(t *testing.T) {
	input := `\N,,\N,\N,\N` + "\n" +
		`7,"says ""hi"", twice",,true,2024-12-31` + "\n"
	r := NewCSVReader(strings.NewReader(input), testSchema(), CSVOptions{})
	row1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !row1[0].Null || !row1[2].Null || !row1[3].Null || !row1[4].Null {
		t.Fatalf("expected NULLs, got %v", row1)
	}
	if row1[1].Null || row1[1].S != "" {
		t.Fatalf("empty string field should be empty string, got %v", row1[1])
	}
	row2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if row2[1].S != `says "hi", twice` {
		t.Fatalf("quoting broken: %q", row2[1].S)
	}
	if !row2[2].Null {
		t.Fatalf("empty DOUBLE field should be NULL, got %v", row2[2])
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCSVHeaderAndDelimiter(t *testing.T) {
	input := "id|name|score|ok|day\n1|x|2.5|false|2020-06-15\n"
	r := NewCSVReader(strings.NewReader(input), testSchema(), CSVOptions{Comma: '|', Header: true})
	row, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != 1 || row[1].S != "x" || row[2].F != 2.5 || row[3].Bool() {
		t.Fatalf("bad row: %v", row)
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	schema := testSchema()
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewString("a"), sqltypes.NewFloat(1.25), sqltypes.NewBool(true), sqltypes.NewDate(19000)},
		{sqltypes.NewNull(sqltypes.Int64), sqltypes.NewNull(sqltypes.String), sqltypes.NewNull(sqltypes.Float64), sqltypes.NewNull(sqltypes.Bool), sqltypes.NewNull(sqltypes.Date)},
		{sqltypes.NewInt(-9), sqltypes.NewString(strings.Repeat("z", 500)), sqltypes.NewFloat(-0.5), sqltypes.NewBool(false), sqltypes.NewDate(0)},
	}
	var buf []byte
	for _, row := range rows {
		buf = AppendFrame(buf, schema, row)
	}
	r := NewBinaryReader(bytes.NewReader(buf), schema)
	for i, want := range rows {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		for c := range want {
			if got[c].Null != want[c].Null || (!want[c].Null && got[c].String() != want[c].String()) {
				t.Fatalf("row %d col %d: got %v want %v", i, c, got[c], want[c])
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryTruncatedFrameIsFatal(t *testing.T) {
	schema := testSchema()
	buf := AppendFrame(nil, schema, sqltypes.Row{
		sqltypes.NewInt(1), sqltypes.NewString("abc"), sqltypes.NewFloat(1), sqltypes.NewBool(true), sqltypes.NewDate(1),
	})
	r := NewBinaryReader(bytes.NewReader(buf[:len(buf)-2]), schema)
	_, err := r.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated frame must be a fatal error, got %v", err)
	}
	var re *RowError
	if errors.As(err, &re) {
		t.Fatal("truncation must not be a recoverable RowError")
	}
}

func TestBinaryOversizedFrameIsFatal(t *testing.T) {
	// Frame length far beyond MaxFrameBytes.
	buf := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x00}
	r := NewBinaryReader(bytes.NewReader(buf), testSchema())
	_, err := r.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("oversized frame must be fatal, got %v", err)
	}
}

func TestControllerClimbsAndReverses(t *testing.T) {
	c := newController(Options{RowGroupSize: 1 << 16, BulkThreshold: 1 << 10})
	if c.target() != 1<<10 {
		t.Fatalf("controller should start at the threshold, got %d", c.target())
	}
	// Monotonically improving throughput keeps the controller growing.
	last := c.target()
	for i := 0; i < 10; i++ {
		c.observe(float64(1000 * (i + 1)))
		if c.target() < last {
			t.Fatalf("controller shrank (%d -> %d) under improving throughput", last, c.target())
		}
		last = c.target()
	}
	grown := c.target()
	if grown <= 1<<10 {
		t.Fatalf("controller never grew: %d", grown)
	}
	// A big throughput drop reverses the direction.
	c.observe(100)
	if c.target() >= grown {
		t.Fatalf("controller did not back off after a throughput drop: %d -> %d", grown, c.target())
	}
	// Targets always stay within [threshold, row group size].
	for i := 0; i < 100; i++ {
		c.observe(float64(50 + i%3*10000))
		if c.target() < 1<<10 || c.target() > 1<<16 {
			t.Fatalf("controller escaped its bounds: %d", c.target())
		}
	}
}

func TestGrantPressureFlushesEarly(t *testing.T) {
	sink := &fakeSink{}
	// Strings are ~1KiB per row; a 64KiB grant forces flushes well before the
	// 1<<20-row adaptive target, but never below the 16-row threshold.
	ldr, _ := New(sink, Options{RowGroupSize: 1 << 20, BulkThreshold: 16, GrantBytes: 64 << 10})
	var sb strings.Builder
	big := strings.Repeat("x", 1024)
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "%d,%s,1.0,true,2024-01-01\n", i, big)
	}
	res, err := ldr.Run(context.Background(), NewCSVReader(strings.NewReader(sb.String()), testSchema(), CSVOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) < 4 {
		t.Fatalf("grant pressure should have forced multiple flushes, got %d batches", len(res.Batches))
	}
	for i, b := range res.Batches {
		if b.Direct {
			// Pressure caps every direct flush far below the 1<<20-row
			// adaptive ceiling (~64KiB / ~1KiB rows), never below threshold.
			if b.Rows < 16 || b.Rows > 128 {
				t.Fatalf("direct batch %d outside the pressure window: %+v", i, b)
			}
			continue
		}
		// Only a sub-threshold tail at EOF may fall back to delta; a
		// mid-stream delta flush would mean pressure diverted bulk rows.
		if i != len(res.Batches)-1 || b.Rows >= 16 {
			t.Fatalf("pressure flush diverted bulk rows to the delta store: batch %d %+v", i, b)
		}
	}
	if sink.rows() != 500 {
		t.Fatalf("lost rows: sink saw %d of 500", sink.rows())
	}
}

func TestPipelinedDeliversAllRowsAndErrors(t *testing.T) {
	input := csvInput(100) + "bad,x,1.0,true,2024-01-01\n" + csvInput(5)
	r := Pipelined(context.Background(), NewCSVReader(strings.NewReader(input), testSchema(), CSVOptions{}), 8)
	rows, dead := 0, 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		var re *RowError
		if errors.As(err, &re) {
			dead++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		rows++
	}
	if rows != 105 || dead != 1 {
		t.Fatalf("pipelined reader delivered %d rows, %d dead letters; want 105/1", rows, dead)
	}
}

func TestPipelinedCancellationUnblocksProducer(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Small depth so the producer blocks quickly; never drain.
	r := Pipelined(ctx, NewCSVReader(strings.NewReader(csvInput(10000)), testSchema(), CSVOptions{}), 1)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Drain whatever was buffered; the reader must terminate (EOF or ctx
	// error), not hang.
	for i := 0; i < 10; i++ {
		if _, err := r.Next(); err != nil {
			if err != context.Canceled && err != io.EOF {
				t.Fatalf("unexpected terminal error: %v", err)
			}
			return
		}
	}
	t.Fatal("pipelined reader kept producing after cancellation")
}
