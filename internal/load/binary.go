package load

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"apollo/internal/sqltypes"
)

// MaxFrameBytes caps one binary frame. A length prefix beyond it is treated
// as a corrupt stream (fatal), not a dead letter: once the frame length is
// untrustworthy the framing is lost and nothing after it can be decoded.
const MaxFrameBytes = 1 << 26 // 64 MiB

// BinaryReader decodes the length-prefixed binary load format: each row is
// a uvarint byte length followed by the sqltypes row codec body (null
// bitmap + fixed/varint columns). A frame whose body fails to decode is a
// dead letter (*RowError) — the length prefix still bounds it, so the
// stream stays in sync; a truncated or oversized frame is fatal.
type BinaryReader struct {
	br     *bufio.Reader
	schema *sqltypes.Schema
	buf    []byte
	line   int
	fatal  error // latched: once framing is lost the reader stays dead
}

// NewBinaryReader wraps r as a row source for schema.
func NewBinaryReader(r io.Reader, schema *sqltypes.Schema) *BinaryReader {
	return &BinaryReader{br: bufio.NewReaderSize(r, 64<<10), schema: schema}
}

// Next returns the next decoded row, io.EOF at clean end of input (a frame
// boundary), or an error. Truncation mid-frame returns a fatal error, never
// io.EOF.
func (b *BinaryReader) Next() (sqltypes.Row, error) {
	if b.fatal != nil {
		return nil, b.fatal
	}
	b.line++
	n, err := b.readFrameLen()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		b.fatal = err
		return nil, err
	}
	if n == 0 || n > MaxFrameBytes {
		b.fatal = fmt.Errorf("load: frame %d has invalid length %d (max %d)", b.line, n, int64(MaxFrameBytes))
		return nil, b.fatal
	}
	if cap(b.buf) < int(n) {
		b.buf = make([]byte, n)
	}
	frame := b.buf[:n]
	if _, err := io.ReadFull(b.br, frame); err != nil {
		b.fatal = fmt.Errorf("load: frame %d truncated: %w", b.line, err)
		return nil, b.fatal
	}
	row, used, err := sqltypes.DecodeRow(frame, b.schema)
	if err != nil {
		return nil, &RowError{Line: b.line, Err: fmt.Errorf("undecodable frame: %w", err)}
	}
	if used != len(frame) {
		return nil, &RowError{Line: b.line, Err: fmt.Errorf("frame has %d trailing bytes", len(frame)-used)}
	}
	return row, nil
}

// readFrameLen reads the uvarint length prefix byte by byte so a clean EOF
// (no bytes at all) is distinguishable from truncation mid-prefix.
func (b *BinaryReader) readFrameLen() (uint64, error) {
	var n uint64
	var shift uint
	for i := 0; ; i++ {
		c, err := b.br.ReadByte()
		if err != nil {
			if err == io.EOF && i == 0 {
				return 0, io.EOF
			}
			return 0, fmt.Errorf("load: frame %d length prefix truncated: %w", b.line, err)
		}
		if i == 9 && c > 1 || shift >= 64 {
			return 0, fmt.Errorf("load: frame %d length prefix overflows uvarint", b.line)
		}
		n |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return n, nil
		}
		shift += 7
	}
}

// AppendFrame appends one row in the binary load format (uvarint length +
// row codec body) to dst. It is the encoder side of BinaryReader, used by
// clients and tests that generate binary load streams.
func AppendFrame(dst []byte, schema *sqltypes.Schema, row sqltypes.Row) []byte {
	body := sqltypes.EncodeRow(nil, schema, row)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}
