// Package load implements the bulk-load pipeline (paper §4.2): decoders
// stream rows out of CSV or length-prefixed binary input, the loader cuts
// them into batches, and each batch either compresses directly into a row
// group (at or above the table's bulk threshold, one atomic WAL group
// publish) or falls back to a single batched delta insert. An adaptive
// controller tunes the batch size against measured rows/sec and memory-grant
// pressure; malformed input rows are dead-lettered up to a cap instead of
// aborting the load.
package load

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

// Sink is the table-side surface the loader drives. *table.Table satisfies
// it: CompressDirect publishes the batch as compressed row groups (atomic
// per group under the WAL), InsertBatch trickle-inserts it into the delta
// store with one durability wait for the whole batch.
type Sink interface {
	CompressDirect(rows []sqltypes.Row) (int, error)
	InsertBatch(ctx context.Context, rows []sqltypes.Row) error
}

// RowReader produces decoded rows. Next returns io.EOF at clean end of
// input, a *RowError for a malformed-but-recoverable row (the reader stays
// usable and the loader dead-letters it), and any other error for a fatal
// condition (lost framing, I/O failure) that aborts the load.
type RowReader interface {
	Next() (sqltypes.Row, error)
}

// RowError marks one undecodable input row. The reader has already skipped
// past it; the loader records it as a dead letter and continues.
type RowError struct {
	Line int // 1-based input row/record number
	Err  error
}

func (e *RowError) Error() string { return fmt.Sprintf("row %d: %v", e.Line, e.Err) }

func (e *RowError) Unwrap() error { return e.Err }

// DeadLetter is one rejected input row, returned in-band with the result.
type DeadLetter struct {
	Line   int    `json:"line"`
	Reason string `json:"reason"`
}

// BatchStat records one flushed batch for the adaptive sweep.
type BatchStat struct {
	Rows       int     `json:"rows"`
	Direct     bool    `json:"direct"`
	Seconds    float64 `json:"seconds"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Target     int     `json:"target"` // controller's batch-size target when the batch was cut
}

// Result is the outcome of one load.
type Result struct {
	RowsLoaded  int          `json:"rows_loaded"`
	RowsDirect  int          `json:"rows_direct"` // rows compressed straight into row groups
	RowsDelta   int          `json:"rows_delta"`  // rows that fell back to batched delta inserts
	Groups      int          `json:"groups"`      // row groups published by the direct path
	Retries     int          `json:"retries"`     // transient-fault batch retries
	DeadLetters []DeadLetter `json:"dead_letters,omitempty"`
	Batches     []BatchStat  `json:"batches,omitempty"`
	FinalTarget int          `json:"final_target"` // controller's batch size when the load ended
}

// DefaultMaxDeadLetters bounds how many malformed rows a load tolerates
// before aborting, when Options.MaxDeadLetters is zero.
const DefaultMaxDeadLetters = 1000

// Options configures a Loader.
type Options struct {
	// RowGroupSize caps a batch (and therefore a published row group).
	// Required > 0.
	RowGroupSize int
	// BulkThreshold is the smallest batch that compresses directly; smaller
	// flushes fall back to batched delta inserts. <=0 disables the direct
	// path entirely.
	BulkThreshold int
	// BatchRows pins the batch size (clamped to RowGroupSize) and disables
	// the adaptive controller. 0 = adaptive.
	BatchRows int
	// MaxDeadLetters caps tolerated malformed rows (0 = DefaultMaxDeadLetters,
	// negative = reject none: the first bad row aborts).
	MaxDeadLetters int
	// MaxRetries bounds per-batch retries on transient storage faults
	// (0 = 3 attempts total).
	MaxRetries int
	// GrantBytes is the loader's memory grant: when the buffered batch is
	// estimated at or above it, the batch flushes early (grant pressure)
	// even if the controller wanted it larger. <=0 = unlimited.
	GrantBytes int64
}

// Loader streams rows from a RowReader into a Sink.
type Loader struct {
	sink Sink
	opts Options
}

// New creates a loader. opts.RowGroupSize must be positive.
func New(sink Sink, opts Options) (*Loader, error) {
	if opts.RowGroupSize <= 0 {
		return nil, fmt.Errorf("load: RowGroupSize must be positive (got %d)", opts.RowGroupSize)
	}
	if opts.BatchRows > opts.RowGroupSize {
		opts.BatchRows = opts.RowGroupSize
	}
	if opts.MaxDeadLetters == 0 {
		opts.MaxDeadLetters = DefaultMaxDeadLetters
	} else if opts.MaxDeadLetters < 0 {
		opts.MaxDeadLetters = 0
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	return &Loader{sink: sink, opts: opts}, nil
}

// Run drains the reader into the sink. It always returns a non-nil Result
// describing whatever was loaded, even alongside an error, so callers can
// surface partial progress and dead letters in-band.
func (l *Loader) Run(ctx context.Context, r RowReader) (*Result, error) {
	res := &Result{}
	ctrl := newController(l.opts)
	buf := make([]sqltypes.Row, 0, ctrl.target())
	var bufBytes int64

	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		direct := l.opts.BulkThreshold > 0 && len(buf) >= l.opts.BulkThreshold
		start := time.Now()
		var groups int
		var err error
		for attempt := 0; ; attempt++ {
			if direct {
				groups, err = l.sink.CompressDirect(buf)
			} else {
				err = l.sink.InsertBatch(ctx, buf)
			}
			if err == nil {
				break
			}
			// Bounded retry covers transient storage faults, and only while
			// nothing from this batch has been published (a batch fits in one
			// row group, so a direct flush is all-or-nothing; groups>0 would
			// mean re-running duplicates rows).
			if !storage.IsTransient(err) || groups > 0 || attempt+1 >= l.opts.MaxRetries {
				return fmt.Errorf("load: flush of %d rows failed: %w", len(buf), err)
			}
			res.Retries++
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(1+attempt) * 5 * time.Millisecond):
			}
		}
		secs := time.Since(start).Seconds()
		rate := 0.0
		if secs > 0 {
			rate = float64(len(buf)) / secs
		}
		res.Batches = append(res.Batches, BatchStat{
			Rows: len(buf), Direct: direct, Seconds: secs, RowsPerSec: rate,
			Target: ctrl.target(),
		})
		res.RowsLoaded += len(buf)
		if direct {
			res.RowsDirect += len(buf)
			res.Groups += groups
		} else {
			res.RowsDelta += len(buf)
		}
		ctrl.observe(rate)
		buf = buf[:0]
		bufBytes = 0
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		row, err := r.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			var re *RowError
			if errors.As(err, &re) {
				res.DeadLetters = append(res.DeadLetters, DeadLetter{Line: re.Line, Reason: re.Err.Error()})
				if len(res.DeadLetters) > l.opts.MaxDeadLetters {
					return res, fmt.Errorf("load: aborted after %d malformed rows (cap %d); last: %w",
						len(res.DeadLetters), l.opts.MaxDeadLetters, re)
				}
				continue
			}
			return res, err
		}
		buf = append(buf, row)
		bufBytes += rowBytes(row)
		if len(buf) >= ctrl.target() || l.grantPressure(len(buf), bufBytes) {
			if err := flush(); err != nil {
				return res, err
			}
		}
	}
	if err := flush(); err != nil {
		return res, err
	}
	res.FinalTarget = ctrl.target()
	return res, nil
}

// grantPressure reports whether the buffered batch should flush early
// because it has grown to the memory grant. The batch must still be large
// enough for the direct path — flushing below the threshold under pressure
// would silently divert bulk rows into the delta store.
func (l *Loader) grantPressure(bufRows int, bufBytes int64) bool {
	return l.opts.GrantBytes > 0 && bufBytes >= l.opts.GrantBytes &&
		l.opts.BulkThreshold > 0 && bufRows >= l.opts.BulkThreshold
}

// rowBytes estimates a row's in-memory footprint for grant accounting.
func rowBytes(row sqltypes.Row) int64 {
	n := int64(len(row)) * 24 // Value struct overhead, rounded down
	for _, v := range row {
		n += int64(len(v.S))
	}
	return n
}

// controller is the adaptive batch-size controller: a multiplicative
// hill-climb on measured rows/sec, after SNIPPETS.md's mutation_batch_size
// exemplar. Each observed flush rate is compared to the previous one; if
// throughput improved the controller keeps moving in its current direction
// (growing toward RowGroupSize or shrinking toward the bulk threshold), and
// if it degraded by more than the tolerance it reverses.
type controller struct {
	size     int
	min, max int
	fixed    bool
	dir      float64 // +1 growing, -1 shrinking
	lastRate float64
}

const (
	ctrlStep      = 1.25 // multiplicative step per observation
	ctrlTolerance = 0.05 // reverse direction on >5% throughput drop
)

func newController(o Options) *controller {
	c := &controller{min: o.BulkThreshold, max: o.RowGroupSize, dir: +1}
	if c.min <= 0 || c.min > c.max {
		c.min = c.max / 16
	}
	if c.min < 1 {
		c.min = 1
	}
	if o.BatchRows > 0 {
		c.size = o.BatchRows
		c.fixed = true
		return c
	}
	// Start at the direct-path threshold: the smallest batch that still
	// compresses directly, so early batches are cheap while the controller
	// learns.
	c.size = c.min
	return c
}

func (c *controller) target() int { return c.size }

func (c *controller) observe(rate float64) {
	if c.fixed || rate <= 0 {
		return
	}
	if c.lastRate > 0 && rate < c.lastRate*(1-ctrlTolerance) {
		c.dir = -c.dir
	}
	c.lastRate = rate
	next := c.size
	if c.dir > 0 {
		next = int(float64(c.size) * ctrlStep)
	} else {
		next = int(float64(c.size) / ctrlStep)
	}
	if next == c.size {
		next += int(c.dir)
	}
	if next > c.max {
		next = c.max
		c.dir = -1
	}
	if next < c.min {
		next = c.min
		c.dir = +1
	}
	c.size = next
}

// Pipelined decouples decoding from compression through a bounded channel:
// a producer goroutine keeps reading rows from r while the loader flushes
// the previous batch. When the channel fills, the producer blocks — for the
// HTTP load endpoint that stops reads from the request body, which is TCP
// backpressure all the way to the client. The producer exits when the input
// ends, a fatal decode error occurs, or ctx is cancelled (so an aborted
// load never leaks the goroutine).
func Pipelined(ctx context.Context, r RowReader, depth int) RowReader {
	if depth < 1 {
		depth = 1
	}
	p := &pipeReader{ch: make(chan pipeItem, depth), ctx: ctx}
	go func() {
		defer close(p.ch)
		for {
			row, err := r.Next()
			select {
			case p.ch <- pipeItem{row: row, err: err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				var re *RowError
				if errors.As(err, &re) {
					continue // recoverable: keep producing
				}
				return // io.EOF or fatal: done
			}
		}
	}()
	return p
}

type pipeItem struct {
	row sqltypes.Row
	err error
}

type pipeReader struct {
	ch  chan pipeItem
	ctx context.Context
}

func (p *pipeReader) Next() (sqltypes.Row, error) {
	it, ok := <-p.ch
	if !ok {
		// The channel closes after the terminal item was delivered (clean
		// end) or because the producer bailed on cancellation — a closed
		// channel with a live ctx error must not read as a clean EOF.
		if err := p.ctx.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	return it.row, it.err
}
