package load

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"apollo/internal/sqltypes"
)

// NullToken is the explicit CSV NULL marker (PostgreSQL COPY convention).
// An empty unquoted field also decodes as NULL for non-string columns;
// for string columns it is the empty string, so `\N` is the only way to
// load a NULL VARCHAR.
const NullToken = `\N`

// CSVOptions configures a CSVReader.
type CSVOptions struct {
	Comma  rune // field delimiter; 0 = ','
	Header bool // skip the first record
}

// CSVReader decodes CSV records into rows for the given schema. Records
// with the wrong field count or unparsable values surface as *RowError —
// encoding/csv recovers at the next record, so the reader stays usable and
// the loader dead-letters the row.
type CSVReader struct {
	r      *csv.Reader
	schema *sqltypes.Schema
	opts   CSVOptions
	line   int
	header bool  // header still pending
	fatal  error // latched: an I/O failure kills the stream for good
}

// NewCSVReader wraps r as a row source for schema.
func NewCSVReader(r io.Reader, schema *sqltypes.Schema, opts CSVOptions) *CSVReader {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = schema.Len()
	cr.ReuseRecord = true
	return &CSVReader{r: cr, schema: schema, opts: opts, header: opts.Header}
}

// Next returns the next decoded row, io.EOF at end of input, or *RowError
// for a malformed record.
func (c *CSVReader) Next() (sqltypes.Row, error) {
	if c.fatal != nil {
		return nil, c.fatal
	}
	for {
		rec, err := c.r.Read()
		c.line++
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			// encoding/csv parse errors (bad quoting, field-count mismatch)
			// leave the reader positioned at the next record: recoverable.
			if _, ok := err.(*csv.ParseError); ok {
				return nil, &RowError{Line: c.line, Err: err}
			}
			c.fatal = fmt.Errorf("load: csv read at record %d: %w", c.line, err)
			return nil, c.fatal
		}
		if c.header {
			c.header = false
			continue
		}
		row := make(sqltypes.Row, len(rec))
		for i, field := range rec {
			v, perr := parseCSVField(field, c.schema.Cols[i])
			if perr != nil {
				return nil, &RowError{Line: c.line, Err: fmt.Errorf("column %s: %w", c.schema.Cols[i].Name, perr)}
			}
			row[i] = v
		}
		return row, nil
	}
}

// parseCSVField decodes one CSV field into a typed value.
func parseCSVField(s string, col sqltypes.Column) (sqltypes.Value, error) {
	if s == NullToken || (s == "" && col.Typ != sqltypes.String) {
		return sqltypes.NewNull(col.Typ), nil
	}
	switch col.Typ {
	case sqltypes.Int64:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return sqltypes.Value{}, fmt.Errorf("invalid BIGINT %q", s)
		}
		return sqltypes.NewInt(i), nil
	case sqltypes.Float64:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return sqltypes.Value{}, fmt.Errorf("invalid DOUBLE %q", s)
		}
		return sqltypes.NewFloat(f), nil
	case sqltypes.Bool:
		switch strings.ToLower(strings.TrimSpace(s)) {
		case "true", "t", "1", "yes":
			return sqltypes.NewBool(true), nil
		case "false", "f", "0", "no":
			return sqltypes.NewBool(false), nil
		}
		return sqltypes.Value{}, fmt.Errorf("invalid BOOLEAN %q", s)
	case sqltypes.Date:
		days, err := sqltypes.DateFromString(strings.TrimSpace(s))
		if err != nil {
			return sqltypes.Value{}, fmt.Errorf("invalid DATE %q", s)
		}
		return sqltypes.NewDate(days), nil
	case sqltypes.String:
		return sqltypes.NewString(s), nil
	default:
		return sqltypes.Value{}, fmt.Errorf("unsupported column type %v", col.Typ)
	}
}

// CSVField renders a value as one CSV field using the loader's NULL
// convention (the inverse of parseCSVField); useful for tests and tools
// that generate load input.
func CSVField(v sqltypes.Value) string {
	if v.Null {
		return NullToken
	}
	switch v.Typ {
	case sqltypes.Int64:
		return strconv.FormatInt(v.I, 10)
	case sqltypes.Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case sqltypes.Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case sqltypes.Date:
		return sqltypes.DateToString(v.I)
	default:
		return v.S
	}
}
