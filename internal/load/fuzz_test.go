package load

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"apollo/internal/sqltypes"
)

// drain runs a reader to termination, asserting the RowReader contract on
// untrusted input: every call returns a row, a recoverable *RowError, io.EOF,
// or a fatal error — never a panic, and a fatal error terminates (the same
// reader never yields rows again). Iterations are bounded so a fuzz input
// can't loop forever.
func drain(t *testing.T, r RowReader, schema *sqltypes.Schema) {
	t.Helper()
	const maxIters = 1 << 17
	for i := 0; i < maxIters; i++ {
		row, err := r.Next()
		if err == io.EOF {
			return
		}
		var re *RowError
		if errors.As(err, &re) {
			continue
		}
		if err != nil {
			// Fatal: the reader must stay terminal.
			if _, err2 := r.Next(); err2 == nil {
				t.Fatalf("reader yielded a row after fatal error %v", err)
			}
			return
		}
		if len(row) != schema.Len() {
			t.Fatalf("decoded row has %d columns, schema has %d", len(row), schema.Len())
		}
	}
	t.Fatalf("reader did not terminate within %d iterations", maxIters)
}

func fuzzSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Typ: sqltypes.Int64, Nullable: true},
		sqltypes.Column{Name: "b", Typ: sqltypes.String, Nullable: true},
		sqltypes.Column{Name: "c", Typ: sqltypes.Float64, Nullable: true},
		sqltypes.Column{Name: "d", Typ: sqltypes.Bool, Nullable: true},
		sqltypes.Column{Name: "e", Typ: sqltypes.Date, Nullable: true},
	)
}

func FuzzCSVLoad(f *testing.F) {
	f.Add([]byte("1,a,1.5,true,2024-01-01\n2,b,2.5,false,2024-01-02\n"))
	f.Add([]byte("\"unterminated,x,1,true,2024-01-01\n"))
	f.Add([]byte("1,\"a\"b\",1,true,2024-01-01\n"))      // bare quote mid-field
	f.Add([]byte("too,few\n1,2,3,4,5,6,7\n"))            // field-count chaos
	f.Add([]byte(`\N,,\N,\N,\N` + "\n"))                 // null conventions
	f.Add([]byte("9223372036854775808,x,1e999,2,13-13")) // overflow everything
	f.Fuzz(func(t *testing.T, data []byte) {
		drain(t, NewCSVReader(bytes.NewReader(data), fuzzSchema(), CSVOptions{}), fuzzSchema())
		drain(t, NewCSVReader(bytes.NewReader(data), fuzzSchema(), CSVOptions{Comma: '|', Header: true}), fuzzSchema())
	})
}

func FuzzBinaryLoad(f *testing.F) {
	schema := fuzzSchema()
	valid := AppendFrame(nil, schema, sqltypes.Row{
		sqltypes.NewInt(42), sqltypes.NewString("hello"), sqltypes.NewFloat(3.14),
		sqltypes.NewBool(true), sqltypes.NewDate(20000),
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                                                     // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x00})                         // oversized length
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}) // uvarint overflow
	f.Add([]byte{0x03, 0x00, 0x00, 0x00})                                           // garbage body
	f.Add(append(append([]byte{}, valid...), valid[:5]...))                         // valid then torn
	f.Add([]byte{0x00, 0x02, '7', '0'})                                             // zero-length frame, then a decodable one: fatal must latch
	f.Fuzz(func(t *testing.T, data []byte) {
		drain(t, NewBinaryReader(bytes.NewReader(data), schema), schema)
	})
}
