package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	// Re-registration returns the same metric.
	if c2 := r.Counter("test_total", "other help"); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value = %g, want 1.5", got)
	}
	g.Set(0)
	if got := g.Value(); got != 0 {
		t.Fatalf("Value = %g, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "a histogram", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-5.605) > 1e-9 {
		t.Fatalf("Sum = %g, want 5.605", got)
	}
	want := []int64{1, 3, 4, 5} // cumulative, +Inf last
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("BucketCounts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BucketCounts = %v, want %v", got, want)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "durations", nil)
	h.Observe(2e-6)
	if got := h.BucketCounts()[1]; got != 1 {
		t.Fatalf("2µs should land in the 3µs bucket, counts=%v", h.BucketCounts())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	h := r.Histogram("lat", "", []float64{1})
	before := r.Snapshot()
	c.Add(3)
	h.Observe(0.5)
	after := r.Snapshot()
	if d := after["ops_total"] - before["ops_total"]; d != 3 {
		t.Fatalf("counter delta = %g, want 3", d)
	}
	if d := after["lat_count"] - before["lat_count"]; d != 1 {
		t.Fatalf("histogram count delta = %g, want 1", d)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %g, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestWriteTextLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter(`decode_total{enc="dict"}`, "decodes by encoding").Add(2)
	r.Counter(`decode_total{enc="numeric"}`, "ignored duplicate help").Add(5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# HELP decode_total") != 1 {
		t.Fatalf("want exactly one HELP line for the shared base name, got:\n%s", out)
	}
	for _, want := range []string{`decode_total{enc="dict"} 2`, `decode_total{enc="numeric"} 5`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-Inf|NaN|[0-9eE.+-]+)$`)

// ValidatePrometheusText is a minimal parser for the exposition format used
// by this test and re-used (by copy) in the engine-level format test: every
// line must be a well-formed HELP/TYPE comment or sample, every sample's
// base name must have a preceding TYPE, and histogram series must be
// cumulative with _count equal to the +Inf bucket.
func validatePrometheusText(t *testing.T, text string) {
	t.Helper()
	types := map[string]string{}
	lastBucket := map[string]float64{}
	infBucket := map[string]float64{}
	counts := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("bad metric type in %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment %q", line)
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := types[base]; !ok {
			if _, ok := types[name]; !ok {
				t.Fatalf("sample %q has no TYPE header", line)
			}
		}
		valStr := line[strings.LastIndexByte(line, ' ')+1:]
		val, err := strconv.ParseFloat(strings.Replace(valStr, "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		series := line[:strings.LastIndexByte(line, ' ')]
		switch {
		case strings.Contains(series, "_bucket{"):
			key := series[:strings.Index(series, "_bucket{")]
			if val < lastBucket[key] {
				t.Fatalf("histogram %s buckets not cumulative at %q", key, line)
			}
			lastBucket[key] = val
			if strings.Contains(series, `le="+Inf"`) {
				infBucket[key] = val
			}
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")] = val
		}
	}
	for key, inf := range infBucket {
		if c, ok := counts[key]; ok && c != inf {
			t.Fatalf("histogram %s: _count %g != +Inf bucket %g", key, c, inf)
		}
	}
}

func TestWriteTextIsValidPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(7)
	r.Gauge("b_current", "gauges b").Set(-1.25)
	h := r.Histogram("c_seconds", "times c", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(7)
	r.Counter(`d_total{kind="x"}`, "labeled").Inc()
	r.Histogram(`e_seconds{enc="dict"}`, "labeled histogram", nil).Observe(0.2)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	validatePrometheusText(t, buf.String())

	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		"# TYPE b_current gauge",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_count 3",
		`e_seconds_bucket{enc="dict",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDefaultRegistryWriteText(t *testing.T) {
	// The process-wide registry accumulates series from every instrumented
	// layer that was linked into the test binary; whatever is there must
	// render as valid exposition text.
	var buf bytes.Buffer
	if err := Default.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	validatePrometheusText(t, buf.String())
}

func TestTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(TraceEvent{Query: 7, Op: "scan", Worker: -1, Event: "open"})
	tr.Emit(TraceEvent{Query: 7, Op: "scan", Worker: -1, Event: "batch", Rows: 900})
	tr.Emit(TraceEvent{Query: 7, Op: "scan", Worker: -1, Event: "close"})

	var last int64 = -1
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if ev.TsNs < last {
			t.Fatalf("timestamps not monotone: %d after %d", ev.TsNs, last)
		}
		last = ev.TsNs
		if ev.Query != 7 || ev.Op != "scan" {
			t.Fatalf("unexpected event %+v", ev)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("got %d events, want 3", n)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Emit(TraceEvent{Op: "scan", Event: "open"}) // must not panic
}

func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Emit(TraceEvent{Op: fmt.Sprintf("op%d", w), Event: "batch", Rows: i})
			}
		}(w)
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("interleaved write produced invalid JSON line: %v", err)
		}
		n++
	}
	if n != 200 {
		t.Fatalf("got %d events, want 200", n)
	}
}
