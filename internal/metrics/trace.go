package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEvent is one structured query-trace record: a JSON line per operator
// lifecycle transition. Timestamps are nanoseconds on the tracer's monotonic
// clock (time since the tracer was created), so events order correctly even
// across wall-clock adjustments and are trivially diffable in tests.
//
// Event values: "open" (operator opened; Rows carries 0), "batch" (one Next
// call produced a batch of Rows rows), "eos" (Next returned end of stream),
// "close" (operator closed), "error" (Open/Next failed; Err carries the
// message).
type TraceEvent struct {
	TsNs   int64  `json:"ts_ns"`
	Query  uint64 `json:"query"`
	Op     string `json:"op"`
	Worker int    `json:"worker"`
	Event  string `json:"event"`
	Rows   int    `json:"rows,omitempty"`
	Err    string `json:"err,omitempty"`
}

// Tracer serializes TraceEvents as JSON lines onto a writer. It is safe for
// concurrent use (exchange workers emit from many goroutines); a nil *Tracer
// is a valid no-op so instrumented code can emit unconditionally.
type Tracer struct {
	mu    sync.Mutex
	enc   *json.Encoder
	start time.Time
}

// NewTracer creates a tracer writing JSON lines to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{enc: json.NewEncoder(w), start: time.Now()}
}

// Emit stamps ev with the monotonic timestamp and writes it. Write errors
// are dropped: tracing must never fail a query.
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	ev.TsNs = time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	_ = t.enc.Encode(ev)
	t.mu.Unlock()
}
