// Package metrics is the engine's observability substrate: a process-wide
// registry of lock-free counters, gauges, and fixed-bucket histograms that
// every layer (storage, colstore, delta, tuple mover, batch executor,
// planner) increments on its hot paths, plus a structured query tracer
// (trace.go).
//
// Design constraints, in order:
//
//  1. Hot-path cost. Inc/Add/Observe are single atomic adds (a histogram
//     Observe is two adds plus a branch-free bucket search over a handful of
//     bounds). No maps, no locks, no allocation after registration. Metric
//     handles are resolved once, at package init of the instrumented layer,
//     never per operation.
//  2. One process-wide registry (Default). The engine is embeddable and a
//     process may open several DBs; counters are cumulative across all of
//     them, like any process metric. Per-query numbers come from the query's
//     own ScanStats/OpStats snapshots, not from this registry.
//  3. Text exposition. WriteText renders the Prometheus text format
//     (# HELP / # TYPE plus samples) so the output can be scraped, diffed,
//     or piped into promtool untouched.
//
// Metric names may carry a constant label set in the usual brace syntax
// ("apollo_colstore_decode_seconds{enc=\"dict\"}"): series sharing a base
// name are grouped under one HELP/TYPE header and each keeps its labels.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; they are applied as-is so
// tests can detect them in the exposition).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down (queue depths, current
// backoff, worker counts).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop (gauges are not hot-path metrics).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram over float64 observations.
// Buckets are upper bounds in increasing order; an implicit +Inf bucket
// catches the tail. Observe is lock-free: one bucket add, one count add, and
// a CAS loop for the sum.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // one per bound, plus +Inf at the end
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the cumulative per-bucket counts (last entry = +Inf).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// DurationBuckets is the default bucket ladder for sub-second latencies, in
// seconds: 1µs .. 1s by decades with a 3x midpoint each decade.
var DurationBuckets = []float64{
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1,
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name   string // full series name, possibly with {labels}
	base   string // name stripped of labels
	labels string // label body without braces ("" when unlabeled)
	help   string
	kind   metricKind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry holds named metrics. Registration takes a mutex; reads and
// updates of registered metrics are lock-free. Re-registering a name returns
// the existing metric, so package-level var blocks in different layers can
// share series safely.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Default is the process-wide registry every engine layer registers into.
var Default = NewRegistry()

func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

func (r *Registry) register(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered with a different kind", name))
		}
		return m
	}
	base, labels := splitName(name)
	m := &metric{name: name, base: base, labels: labels, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter registered under name, creating it on first
// use. help is recorded on first registration only.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).g
}

// Histogram returns the histogram registered under name with the given
// bucket upper bounds (sorted ascending; nil = DurationBuckets), creating it
// on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, kindHistogram)
	m.h.init(bounds)
	return m.h
}

var histInitMu sync.Mutex

func (h *Histogram) init(bounds []float64) {
	histInitMu.Lock()
	defer histInitMu.Unlock()
	if h.buckets != nil {
		return
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	h.bounds = append([]float64(nil), bounds...)
	h.buckets = make([]atomic.Int64, len(bounds)+1)
}

// Snapshot returns the current value of every counter and gauge by full
// series name (histograms report <name>_count and <name>_sum). Tests diff
// two snapshots around an operation to assert per-operation deltas.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.ordered))
	for _, m := range r.ordered {
		switch m.kind {
		case kindCounter:
			out[m.name] = float64(m.c.Value())
		case kindGauge:
			out[m.name] = m.g.Value()
		case kindHistogram:
			out[m.name+"_count"] = float64(m.h.Count())
			out[m.name+"_sum"] = m.h.Sum()
		}
	}
	return out
}

// WriteText renders the registry in the Prometheus text exposition format.
// Series sharing a base name emit one # HELP/# TYPE header (first
// registration's help wins) followed by every labeled sample.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()

	written := map[string]bool{}
	for _, m := range ms {
		if !written[m.base] {
			written[m.base] = true
			kind := "counter"
			switch m.kind {
			case kindGauge:
				kind = "gauge"
			case kindHistogram:
				kind = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.base, m.help, m.base, kind); err != nil {
				return err
			}
		}
		if err := m.writeSamples(w); err != nil {
			return err
		}
	}
	return nil
}

func (m *metric) series(suffix, extraLabels string) string {
	labels := m.labels
	if extraLabels != "" {
		if labels != "" {
			labels += ","
		}
		labels += extraLabels
	}
	if labels == "" {
		return m.base + suffix
	}
	return m.base + suffix + "{" + labels + "}"
}

func (m *metric) writeSamples(w io.Writer) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", m.series("", ""), m.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", m.series("", ""), formatFloat(m.g.Value()))
		return err
	case kindHistogram:
		counts := m.h.BucketCounts()
		for i, bound := range m.h.bounds {
			le := fmt.Sprintf(`le="%s"`, formatFloat(bound))
			if _, err := fmt.Fprintf(w, "%s %d\n", m.series("_bucket", le), counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", m.series("_bucket", `le="+Inf"`), counts[len(counts)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.series("_sum", ""), formatFloat(m.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", m.series("_count", ""), m.h.Count())
		return err
	}
	return nil
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
