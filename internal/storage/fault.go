package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"syscall"
	"time"
)

// TransientError is a storage failure expected to succeed on retry: an
// injected I/O fault or any other condition that does not imply the blob's
// at-rest bytes are wrong. Store.Get retries transient read failures under
// the store's RetryPolicy before giving up.
type TransientError struct {
	Blob BlobID
	Err  error
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("storage: transient fault on blob %d: %v", e.Blob, e.Err)
}

// Unwrap exposes the cause.
func (e *TransientError) Unwrap() error { return e.Err }

// CorruptionError reports a checksum mismatch: the blob's raw bytes do not
// match the checksum recorded at Put time. Corruption is never retried —
// the at-rest data is wrong and re-reading cannot fix it — and the error
// names the blob so operators and repair tools can attribute the damage.
type CorruptionError struct {
	Blob BlobID
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("storage: blob %d checksum mismatch (corruption)", e.Blob)
}

// IsTransient reports whether err is (or wraps) a retriable storage fault.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// IsCorruption reports whether err is (or wraps) a checksum failure.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// RetryPolicy bounds the retry-with-exponential-backoff loop around
// transient read failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 1 are treated as 1.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each subsequent
	// retry doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy is tuned for an in-process store: enough attempts to
// ride out probabilistic fault injection without stretching query latency.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 200 * time.Microsecond, MaxBackoff: 5 * time.Millisecond}
}

// backoff returns the sleep before retry attempt (0-based retry index).
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseBackoff << uint(retry)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// FaultConfig parameterizes a FaultInjector. Rates are probabilities in
// [0, 1] evaluated independently per operation.
type FaultConfig struct {
	// ReadErrorRate injects transient errors on Get (before any bytes are
	// produced). These are retriable.
	ReadErrorRate float64
	// WriteErrorRate injects transient errors on Put.
	WriteErrorRate float64
	// CorruptionRate flips one bit of the bytes produced by a Get, so the
	// checksum verification fails. The at-rest blob is NOT modified; the
	// fault models a one-off media/transfer corruption. Not retried.
	CorruptionRate float64
	// ReadLatency is added to every Get that reaches the injector (cache
	// misses), modeling a slow device.
	ReadLatency time.Duration
	// Seed makes the fault sequence reproducible; 0 seeds from the clock.
	Seed int64

	// Deterministic durability faults, counted per write that would reach
	// the publish path (probabilistic rates above stay independent of them).
	//
	// NoSpaceAtWrite is the 1-based write index at which the disk becomes
	// "full": that write and every later one fail with an error wrapping
	// syscall.ENOSPC until the injector is cleared — modelling exhaustion
	// that persists until space is freed. 0 disables.
	NoSpaceAtWrite int64
	// FailSyncAtWrite is the 1-based write index whose publish fsync fails
	// with a synthetic I/O error. Per fsyncgate semantics the store treats
	// it as a poisoning event (the backing's sync-fail hook fires). 0
	// disables.
	FailSyncAtWrite int64
}

// FaultInjector injects storage faults per FaultConfig. It is attached to a
// Store with SetFaultInjector and is safe for concurrent use.
type FaultInjector struct {
	cfg  FaultConfig
	seed int64 // resolved seed (never 0); reported so runs are reproducible

	mu  sync.Mutex
	rng *rand.Rand

	injected int64 // faults injected (errors + corruptions), under mu
	writeSeq int64 // durable writes seen, for the deterministic faults, under mu
}

// NewFaultInjector builds an injector for the given configuration.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &FaultInjector{cfg: cfg, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the resolved RNG seed, whether configured or drawn from the
// clock. Re-running with FaultConfig.Seed set to this value reproduces the
// same fault sequence for the same operation order.
func (f *FaultInjector) Seed() int64 { return f.seed }

// Injected reports how many faults this injector has raised.
func (f *FaultInjector) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// roll draws one uniform sample and reports whether a fault at rate fires.
func (f *FaultInjector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	f.mu.Lock()
	hit := f.rng.Float64() < rate
	if hit {
		f.injected++
		mFaultsInjected.Inc()
	}
	f.mu.Unlock()
	return hit
}

// beforeRead applies read latency and possibly fails the read.
func (f *FaultInjector) beforeRead(id BlobID) error {
	if f.cfg.ReadLatency > 0 {
		time.Sleep(f.cfg.ReadLatency)
	}
	if f.roll(f.cfg.ReadErrorRate) {
		return &TransientError{Blob: id, Err: errors.New("injected read fault")}
	}
	return nil
}

// beforeWrite possibly fails the write.
func (f *FaultInjector) beforeWrite() error {
	if f.roll(f.cfg.WriteErrorRate) {
		return &TransientError{Err: errors.New("injected write fault")}
	}
	return nil
}

// NoSpaceError is an injected disk-exhaustion failure on the blob write
// path. It unwraps to syscall.ENOSPC so the degrade layer classifies it
// exactly like a real full disk.
type NoSpaceError struct{ Op string }

func (e *NoSpaceError) Error() string {
	return fmt.Sprintf("storage: %s: disk full: %v", e.Op, syscall.ENOSPC)
}

func (e *NoSpaceError) Unwrap() error { return syscall.ENOSPC }

// IsNoSpace reports whether err was caused by disk exhaustion (real or
// injected).
func IsNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// FsyncError is an injected durability-fsync failure on the blob publish
// path. It is treated as poisoning (fail-stop), never retried.
type FsyncError struct{ Op string }

func (e *FsyncError) Error() string {
	return fmt.Sprintf("storage: %s: fsync failed: %v", e.Op, syscall.EIO)
}

func (e *FsyncError) Unwrap() error { return syscall.EIO }

// noteInjected counts one raised fault. Caller must NOT hold f.mu.
func (f *FaultInjector) noteInjected() {
	f.mu.Lock()
	f.injected++
	f.mu.Unlock()
	mFaultsInjected.Inc()
}

// beforeDurable ticks the durable-write counter and returns the armed
// deterministic fault for this write, if any.
func (f *FaultInjector) beforeDurable() error {
	if f.cfg.NoSpaceAtWrite == 0 && f.cfg.FailSyncAtWrite == 0 {
		return nil
	}
	f.mu.Lock()
	f.writeSeq++
	seq := f.writeSeq
	f.mu.Unlock()
	if f.cfg.FailSyncAtWrite > 0 && seq == f.cfg.FailSyncAtWrite {
		f.noteInjected()
		return &FsyncError{Op: fmt.Sprintf("publish blob (write %d)", seq)}
	}
	if f.cfg.NoSpaceAtWrite > 0 && seq >= f.cfg.NoSpaceAtWrite {
		f.noteInjected()
		return &NoSpaceError{Op: fmt.Sprintf("write blob (write %d)", seq)}
	}
	return nil
}

// probeNoSpace reports whether the injector currently models a full disk —
// i.e. the next durable write would fail — without consuming a write tick.
// The DB's read-only auto-probe consults it so injected exhaustion is not
// "recovered" by a probe that only touches the real filesystem.
func (f *FaultInjector) probeNoSpace() bool {
	if f.cfg.NoSpaceAtWrite == 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeSeq+1 >= f.cfg.NoSpaceAtWrite
}

// corruptRead possibly returns a bit-flipped copy of raw. The original slice
// is never modified (it may be the at-rest buffer or shared with the cache).
func (f *FaultInjector) corruptRead(raw []byte) []byte {
	if len(raw) == 0 || !f.roll(f.cfg.CorruptionRate) {
		return raw
	}
	f.mu.Lock()
	pos := f.rng.Intn(len(raw))
	bit := uint(f.rng.Intn(8))
	f.mu.Unlock()
	flipped := append([]byte(nil), raw...)
	flipped[pos] ^= 1 << bit
	return flipped
}
