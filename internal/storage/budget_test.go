package storage

import (
	"bytes"
	"sync"
	"testing"
)

// putAndGet writes a blob and immediately reads it back, which populates the
// buffer pool (Put does not cache; the first Get does).
func putAndGet(t *testing.T, s *Store, n int) BlobID {
	t.Helper()
	data := bytes.Repeat([]byte{0xAB}, n)
	id, err := s.Put(data, None)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Get(id); err != nil {
		t.Fatalf("Get: %v", err)
	}
	return id
}

func TestBudgetSharedAcrossStores(t *testing.T) {
	b := NewBudget(1000)
	a := NewStore(0)
	c := NewStore(0)
	a.SetCacheBudget(b)
	c.SetCacheBudget(b)

	// Fill most of the budget from store a, then insert from store c: the
	// combined reservation must never exceed the cap.
	for i := 0; i < 4; i++ {
		putAndGet(t, a, 200)
	}
	for i := 0; i < 4; i++ {
		putAndGet(t, c, 200)
	}
	if used := b.Used(); used > b.Cap() {
		t.Fatalf("budget overshot: used %d > cap %d", used, b.Cap())
	}
	if b.Used() == 0 {
		t.Fatal("nothing cached under the shared budget")
	}
}

func TestBudgetEvictionReleases(t *testing.T) {
	b := NewBudget(500)
	s := NewStore(0)
	s.SetCacheBudget(b)

	// Each entry is 200 bytes; the third insert must evict the LRU tail and
	// release its reservation rather than failing or overshooting.
	ids := make([]BlobID, 3)
	for i := range ids {
		ids[i] = putAndGet(t, s, 200)
	}
	if used := b.Used(); used > b.Cap() {
		t.Fatalf("budget overshot after eviction: used %d > cap %d", used, b.Cap())
	}
	// Oldest entry must have been evicted: reading it is a cache miss.
	before := s.Stats().CacheMisses
	if _, err := s.Get(ids[0]); err != nil {
		t.Fatalf("Get evicted blob: %v", err)
	}
	if after := s.Stats().CacheMisses; after != before+1 {
		t.Fatalf("expected a cache miss on the evicted blob (misses %d -> %d)", before, after)
	}

	// Delete and EvictAll must hand bytes back to the budget.
	s.EvictAll()
	if used := b.Used(); used != 0 {
		t.Fatalf("EvictAll left %d bytes reserved", used)
	}
}

func TestBudgetStarvedStoreSkipsCaching(t *testing.T) {
	b := NewBudget(300)
	hog := NewStore(0)
	poor := NewStore(0)
	hog.SetCacheBudget(b)
	poor.SetCacheBudget(b)

	putAndGet(t, hog, 300) // hog takes the whole budget
	id := putAndGet(t, poor, 100)

	// poor has no LRU tail of its own to evict, so the read stays uncached:
	// a second Get misses again instead of deadlocking or overshooting.
	before := poor.Stats().CacheMisses
	if _, err := poor.Get(id); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if after := poor.Stats().CacheMisses; after != before+1 {
		t.Fatalf("starved store unexpectedly cached (misses %d -> %d)", before, after)
	}
	if used := b.Used(); used != 300 {
		t.Fatalf("budget used = %d, want 300 (hog only)", used)
	}
}

func TestBudgetConcurrent(t *testing.T) {
	b := NewBudget(4096)
	stores := make([]*Store, 4)
	for i := range stores {
		stores[i] = NewStore(0)
		stores[i].SetCacheBudget(b)
	}
	var wg sync.WaitGroup
	for _, s := range stores {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			ids := make([]BlobID, 0, 16)
			for i := 0; i < 16; i++ {
				ids = append(ids, putAndGet(t, s, 256))
			}
			for _, id := range ids {
				if _, err := s.Get(id); err != nil {
					t.Errorf("Get: %v", err)
				}
			}
		}(s)
	}
	wg.Wait()
	if used := b.Used(); used > b.Cap() {
		t.Fatalf("budget overshot under concurrency: used %d > cap %d", used, b.Cap())
	}
	for _, s := range stores {
		s.EvictAll()
	}
	if used := b.Used(); used != 0 {
		t.Fatalf("evicting all stores left %d bytes reserved", used)
	}
}
