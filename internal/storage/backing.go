package storage

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

// Blob file layout (one file per blob, named blob-<id>.blob):
//
//	magic     4 bytes "APBL"
//	version   1 byte
//	comp      1 byte (Compression)
//	rawLen    uvarint (decompressed size)
//	checksum  4 bytes LE (crc32 IEEE of the raw bytes, as in blobMeta)
//	payload   the at-rest (possibly deflated) bytes
//
// Files are written to a temp name and renamed into place so a crash never
// leaves a half-written file under a blob name; stray .tmp files are ignored
// (and removed) at load time.

const (
	blobMagic   = "APBL"
	blobVersion = 1
	blobSuffix  = ".blob"
	blobPrefix  = "blob-"
)

// DiskBacking persists a Store's blobs as numbered files in a directory.
// Writes go through at Put time (write-through), so by the time a row-group
// publish record enters the WAL its segment payloads are already on disk; the
// log only carries directory metadata.
type DiskBacking struct {
	dir        string
	syncWrites bool

	// onSyncFail fires when a durability fsync on the publish path fails
	// for a non-ENOSPC reason. The DB wires it to poison (fail-stop): a
	// publish whose directory entry may or may not be durable must never be
	// acknowledged, and retrying the fsync is unsound (fsyncgate).
	onSyncFail atomic.Pointer[func(error)]
	// dirSyncFn overrides directory fsync; regression tests inject failures
	// through it. nil means the real syncDir.
	dirSyncFn atomic.Pointer[func(string) error]
}

// OpenDiskBacking opens (creating if needed) a blob directory. With
// syncWrites set, every blob file is fsynced before the write is
// acknowledged; otherwise durability rides on the OS page cache (sufficient
// against process crashes, not power loss).
func OpenDiskBacking(dir string, syncWrites bool) (*DiskBacking, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create blob dir: %w", err)
	}
	return &DiskBacking{dir: dir, syncWrites: syncWrites}, nil
}

// Dir returns the backing directory.
func (b *DiskBacking) Dir() string { return b.dir }

// SetSyncFailHook installs fn, called whenever a durability fsync on the
// publish path fails (other than by disk exhaustion, which is recoverable
// and surfaces as the write's error instead).
func (b *DiskBacking) SetSyncFailHook(fn func(error)) { b.onSyncFail.Store(&fn) }

// notifySyncFail reports a publish-path fsync failure to the hook.
func (b *DiskBacking) notifySyncFail(err error) {
	if p := b.onSyncFail.Load(); p != nil {
		(*p)(err)
	}
}

// SetDirSyncForTest overrides the directory-fsync step of publishes. Tests
// use it to inject directory-fsync failures, which are otherwise nearly
// impossible to produce on demand. Pass nil to restore the real fsync.
func (b *DiskBacking) SetDirSyncForTest(fn func(dir string) error) {
	if fn == nil {
		b.dirSyncFn.Store(nil)
		return
	}
	b.dirSyncFn.Store(&fn)
}

func (b *DiskBacking) dirSync() error {
	if p := b.dirSyncFn.Load(); p != nil {
		return (*p)(b.dir)
	}
	return syncDir(b.dir)
}

func (b *DiskBacking) path(id BlobID) string {
	return filepath.Join(b.dir, fmt.Sprintf("%s%d%s", blobPrefix, uint64(id), blobSuffix))
}

// Path returns the at-rest file for a blob id. Exposed so integrity tests
// and the scrub smoke can corrupt specific on-disk copies.
func (b *DiskBacking) Path(id BlobID) string { return b.path(id) }

// write persists one blob's at-rest bytes and metadata.
func (b *DiskBacking) write(id BlobID, onDisk []byte, meta blobMeta) error {
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, blobMagic...)
	hdr = append(hdr, blobVersion, byte(meta.comp))
	hdr = binary.AppendUvarint(hdr, uint64(meta.rawLen))
	hdr = binary.LittleEndian.AppendUint32(hdr, meta.checksum)

	tmp := b.path(id) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create blob file: %w", err)
	}
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(onDisk)
	}
	var syncErr error
	if err == nil && b.syncWrites {
		if err = f.Sync(); err != nil && !IsNoSpace(err) {
			// A failed data fsync is fail-stop even though the tmp file is
			// discarded: the kernel may have dropped dirty pages for the
			// whole device queue, and this store must stop acknowledging
			// durable writes (fsyncgate). ENOSPC is the exception — it is
			// recoverable and surfaces as the write's error.
			syncErr = err
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		if syncErr != nil {
			b.notifySyncFail(syncErr)
		}
		return fmt.Errorf("storage: write blob %d: %w", id, err)
	}
	if err := os.Rename(tmp, b.path(id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: publish blob %d: %w", id, err)
	}
	if b.syncWrites {
		// The rename's directory entry must be durable before the WAL record
		// referencing this blob is: fsyncing only the file leaves a power-loss
		// window where the publish record survives but the blob does not. A
		// directory-fsync failure therefore must propagate — swallowing it
		// would acknowledge a publish with unknown durability — and poisons
		// via the sync-fail hook.
		if err := b.dirSync(); err != nil {
			err = fmt.Errorf("storage: sync blob dir after publishing blob %d: %w", id, err)
			if !IsNoSpace(err) {
				b.notifySyncFail(err)
			}
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable. Platforms
// that reject directory fsync outright (EINVAL/ENOTSUP) are tolerated —
// there is no durability to be had there — but every real failure
// propagates.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) {
			return nil
		}
		return serr
	}
	return cerr
}

// remove deletes a blob file (best effort; a missing file is fine).
func (b *DiskBacking) remove(id BlobID) {
	os.Remove(b.path(id))
}

// readBlob reads and parses one blob file. The scrubber uses it to compare
// the on-disk copy against the in-memory one.
func (b *DiskBacking) readBlob(id BlobID) ([]byte, blobMeta, error) {
	buf, err := os.ReadFile(b.path(id))
	if err != nil {
		return nil, blobMeta{}, err
	}
	onDisk, meta, err := parseBlobFile(buf)
	if err != nil {
		return nil, blobMeta{}, fmt.Errorf("storage: blob file %d: %w", id, err)
	}
	return onDisk, meta, nil
}

// writeProbe writes, fsyncs, and removes a scratch file in the blob
// directory: the read-only auto-probe's check that real disk space has
// returned.
func (b *DiskBacking) writeProbe() error {
	path := filepath.Join(b.dir, ".write-probe")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("apollo-write-probe"))
	serr := f.Sync()
	cerr := f.Close()
	os.Remove(path)
	if werr != nil {
		return werr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// load reads every blob file in the directory, returning contents keyed by id.
// Leftover .tmp files from an interrupted write are removed.
func (b *DiskBacking) load() (map[BlobID][]byte, map[BlobID]blobMeta, error) {
	ents, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: read blob dir: %w", err)
	}
	blobs := make(map[BlobID][]byte)
	metas := make(map[BlobID]blobMeta)
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(b.dir, name))
			continue
		}
		idStr, ok := strings.CutPrefix(name, blobPrefix)
		if !ok {
			continue
		}
		idStr, ok = strings.CutSuffix(idStr, blobSuffix)
		if !ok {
			continue
		}
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(b.dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("storage: read blob file %s: %w", name, err)
		}
		onDisk, meta, err := parseBlobFile(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: blob file %s: %w", name, err)
		}
		blobs[BlobID(id)] = onDisk
		metas[BlobID(id)] = meta
	}
	return blobs, metas, nil
}

func parseBlobFile(buf []byte) ([]byte, blobMeta, error) {
	var meta blobMeta
	if len(buf) < 6 || string(buf[:4]) != blobMagic {
		return nil, meta, fmt.Errorf("bad magic")
	}
	if buf[4] != blobVersion {
		return nil, meta, fmt.Errorf("unsupported version %d", buf[4])
	}
	meta.comp = Compression(buf[5])
	pos := 6
	rawLen, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, meta, fmt.Errorf("bad raw length")
	}
	pos += n
	if pos+4 > len(buf) {
		return nil, meta, fmt.Errorf("truncated header")
	}
	meta.checksum = binary.LittleEndian.Uint32(buf[pos:])
	pos += 4
	meta.rawLen = int(rawLen)
	onDisk := append([]byte(nil), buf[pos:]...)
	meta.diskLen = len(onDisk)
	return onDisk, meta, nil
}

// AttachBacking makes the store write-through to disk: every subsequent Put
// also writes a blob file, and Delete removes it. Attach before any writes
// that must be durable.
func (s *Store) AttachBacking(b *DiskBacking) { s.backing.Store(b) }

// Backing returns the attached disk backing (nil for purely in-memory
// stores). The DB uses it to wire fsync-failure poisoning into its health.
func (s *Store) Backing() *DiskBacking { return s.backing.Load() }

// LoadFromBacking repopulates the store from its backing directory,
// replacing current contents and emptying the buffer pool. The next BlobID
// continues past the highest loaded id. Returns the number of blobs loaded.
func (s *Store) LoadFromBacking() (int, error) {
	b := s.backing.Load()
	if b == nil {
		return 0, fmt.Errorf("storage: no disk backing attached")
	}
	blobs, metas, err := b.load()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs = blobs
	s.meta = metas
	s.cache = make(map[BlobID]*list.Element)
	s.lru.Init()
	s.cacheBytes = 0
	for id := range blobs {
		if uint64(id) > s.nextID {
			s.nextID = uint64(id)
		}
	}
	return len(blobs), nil
}

// RetainOnly deletes every blob (and its backing file) whose id is not in
// keep. Recovery uses it to garbage-collect orphans: blobs written by a
// publish or checkpoint that crashed before its WAL record became durable.
func (s *Store) RetainOnly(keep map[BlobID]bool) int {
	s.mu.Lock()
	var drop []BlobID
	for id := range s.blobs {
		if !keep[id] {
			drop = append(drop, id)
		}
	}
	s.mu.Unlock()
	for _, id := range drop {
		s.Delete(id)
	}
	return len(drop)
}
