package storage

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// QuarantinedError reports a read refused because the blob was quarantined:
// the scrubber confirmed corruption on every available copy, so serving it
// would return wrong data. IsCorruption matches it (the cause is the
// underlying CorruptionError).
type QuarantinedError struct {
	Blob  BlobID
	Cause error
}

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("storage: blob %d is quarantined (corrupt at rest): %v", e.Blob, e.Cause)
}

func (e *QuarantinedError) Unwrap() error { return e.Cause }

// IsQuarantined reports whether err is (or wraps) a quarantine refusal.
func IsQuarantined(err error) bool {
	var qe *QuarantinedError
	return errors.As(err, &qe)
}

// Quarantine marks a blob as confirmed-corrupt: it is evicted from the
// buffer pool and every subsequent Get fails with a QuarantinedError
// instead of serving (or re-verifying) the damaged bytes.
func (s *Store) Quarantine(id BlobID, cause error) {
	if cause == nil {
		cause = &CorruptionError{Blob: id}
	}
	s.mu.Lock()
	if s.quarantined == nil {
		s.quarantined = make(map[BlobID]error)
	}
	if _, dup := s.quarantined[id]; !dup {
		s.quarantined[id] = cause
		mQuarantined.Inc()
	}
	if el, ok := s.cache[id]; ok {
		s.removeEntryLocked(el)
	}
	s.mu.Unlock()
}

// Quarantined returns the ids of quarantined blobs, ascending.
func (s *Store) Quarantined() []BlobID {
	s.mu.Lock()
	ids := make([]BlobID, 0, len(s.quarantined))
	for id := range s.quarantined {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// IDs returns every live blob id, ascending. The scrubber walks this
// snapshot; blobs deleted mid-walk are skipped individually.
func (s *Store) IDs() []BlobID {
	s.mu.Lock()
	ids := make([]BlobID, 0, len(s.blobs))
	for id := range s.blobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ScrubOutcome classifies one blob's scrub result.
type ScrubOutcome int

// Scrub outcomes.
const (
	// ScrubOK: both the in-memory copy and the backing file (if any) verify.
	ScrubOK ScrubOutcome = iota
	// ScrubSkipped: the blob disappeared (deleted) or is already quarantined.
	ScrubSkipped
	// ScrubRepairedBacking: the backing file was corrupt or missing and was
	// rewritten from the verified in-memory copy.
	ScrubRepairedBacking
	// ScrubRepairedMemory: the in-memory copy was corrupt and was reloaded
	// from the verified backing file.
	ScrubRepairedMemory
	// ScrubQuarantined: every copy is corrupt; the blob is quarantined and
	// will never be served.
	ScrubQuarantined
)

func (o ScrubOutcome) String() string {
	switch o {
	case ScrubOK:
		return "ok"
	case ScrubSkipped:
		return "skipped"
	case ScrubRepairedBacking:
		return "repaired-backing"
	case ScrubRepairedMemory:
		return "repaired-memory"
	case ScrubQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// verifyAtRest checks one copy of a blob's at-rest bytes against its
// metadata: inflation (for archival blobs), length, and CRC.
func verifyAtRest(id BlobID, onDisk []byte, meta blobMeta) error {
	raw := onDisk
	if meta.comp == Archival {
		r := flate.NewReader(bytes.NewReader(onDisk))
		var err error
		raw, err = io.ReadAll(r)
		if err != nil {
			return &CorruptionError{Blob: id}
		}
		if err := r.Close(); err != nil {
			return &CorruptionError{Blob: id}
		}
	}
	if len(raw) != meta.rawLen || crc32.ChecksumIEEE(raw) != meta.checksum {
		return &CorruptionError{Blob: id}
	}
	return nil
}

// ScrubBlob verifies one blob's at-rest copies — the in-memory bytes and,
// when a disk backing is attached, the blob file — and repairs whichever
// side is damaged from the surviving good copy. Only when every copy is
// corrupt is the blob quarantined. Returns the outcome and the at-rest
// bytes examined (for the scrubber's pacing budget).
func (s *Store) ScrubBlob(id BlobID) (ScrubOutcome, int64, error) {
	s.mu.Lock()
	if _, q := s.quarantined[id]; q {
		s.mu.Unlock()
		return ScrubSkipped, 0, nil
	}
	mem, ok := s.blobs[id]
	meta := s.meta[id]
	s.mu.Unlock()
	if !ok {
		return ScrubSkipped, 0, nil
	}
	bytesExamined := int64(len(mem))
	memErr := verifyAtRest(id, mem, meta)

	b := s.backing.Load()
	if b == nil {
		if memErr != nil {
			s.Quarantine(id, memErr)
			return ScrubQuarantined, bytesExamined, nil
		}
		return ScrubOK, bytesExamined, nil
	}

	file, fileMeta, fileErr := b.readBlob(id)
	if fileErr == nil {
		bytesExamined += int64(len(file))
		if fileMeta.checksum != meta.checksum || fileMeta.comp != meta.comp {
			fileErr = &CorruptionError{Blob: id}
		} else {
			fileErr = verifyAtRest(id, file, fileMeta)
		}
	}

	switch {
	case memErr == nil && fileErr == nil:
		return ScrubOK, bytesExamined, nil

	case memErr == nil:
		// Backing file corrupt or missing: rewrite it from memory. Re-check
		// liveness afterwards so a concurrent Delete doesn't leave a
		// resurrected file behind.
		if err := b.write(id, mem, meta); err != nil {
			return ScrubOK, bytesExamined, fmt.Errorf("storage: scrub rewrite blob %d: %w", id, err)
		}
		s.mu.Lock()
		_, live := s.blobs[id]
		s.mu.Unlock()
		if !live {
			b.remove(id)
			return ScrubSkipped, bytesExamined, nil
		}
		mScrubRepairs.Inc()
		return ScrubRepairedBacking, bytesExamined, nil

	case fileErr == nil:
		// In-memory copy corrupt (e.g. a flipped DRAM/page byte), file good:
		// reload memory from the file.
		s.mu.Lock()
		if _, live := s.blobs[id]; live {
			s.blobs[id] = file
			s.meta[id] = fileMeta
			if el, okc := s.cache[id]; okc {
				s.removeEntryLocked(el)
			}
		}
		s.mu.Unlock()
		mScrubRepairs.Inc()
		return ScrubRepairedMemory, bytesExamined, nil

	default:
		// Both copies corrupt (or the file is unreadable and memory bad).
		cause := memErr
		if os.IsNotExist(fileErr) {
			cause = fmt.Errorf("%w (backing file also missing)", memErr)
		}
		s.Quarantine(id, cause)
		return ScrubQuarantined, bytesExamined, nil
	}
}

// WriteProbe checks whether durable blob writes would currently succeed:
// armed deterministic disk-full injection fails it, then (when a backing is
// attached) a real scratch file is written and fsynced in the blob
// directory.
func (s *Store) WriteProbe() error {
	if f := s.fault.Load(); f != nil && f.probeNoSpace() {
		return &NoSpaceError{Op: "probe"}
	}
	b := s.backing.Load()
	if b == nil {
		return nil
	}
	return b.writeProbe()
}
