package storage

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore(1 << 20)
	data := []byte("hello columnstore")
	id, err := s.Put(data, None)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestArchivalRoundTripAndRatio(t *testing.T) {
	s := NewStore(1 << 20)
	// Compressible data: repeated pattern.
	data := bytes.Repeat([]byte("abcdefgh"), 4096)
	id, err := s.Put(data, Archival)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("archival round trip mismatch")
	}
	disk, raw, err := s.SizeOf(id)
	if err != nil {
		t.Fatal(err)
	}
	if raw != len(data) {
		t.Fatalf("raw size = %d", raw)
	}
	if disk >= raw/4 {
		t.Fatalf("archival did not compress: disk=%d raw=%d", disk, raw)
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore(0)
	if _, err := s.Get(999); err == nil {
		t.Fatal("expected error")
	}
}

func TestDelete(t *testing.T) {
	s := NewStore(1 << 20)
	id, _ := s.Put([]byte("x"), None)
	if _, err := s.Get(id); err != nil {
		t.Fatal(err)
	}
	s.Delete(id)
	if _, err := s.Get(id); err == nil {
		t.Fatal("expected error after delete")
	}
	if s.SizeOnDisk() != 0 {
		t.Fatal("size not zero after delete")
	}
}

func TestBufferPoolHitsAndEviction(t *testing.T) {
	s := NewStore(100) // tiny pool
	small, _ := s.Put(make([]byte, 40), None)
	big, _ := s.Put(make([]byte, 80), None)

	s.Get(small)
	s.Get(small)
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.Reads != 1 {
		t.Fatalf("stats after warm read: %+v", st)
	}

	// Reading big evicts small (40+80 > 100).
	s.Get(big)
	s.Get(small)
	st = s.Stats()
	if st.Reads != 3 {
		t.Fatalf("expected 3 disk reads, got %d", st.Reads)
	}
}

func TestZeroCapacityPoolNeverCaches(t *testing.T) {
	s := NewStore(0)
	id, _ := s.Put([]byte("abc"), None)
	s.Get(id)
	s.Get(id)
	if st := s.Stats(); st.Reads != 2 || st.CacheHits != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEvictAllForcesColdReads(t *testing.T) {
	s := NewStore(1 << 20)
	id, _ := s.Put([]byte("abc"), None)
	s.Get(id)
	s.EvictAll()
	s.Get(id)
	if st := s.Stats(); st.Reads != 2 {
		t.Fatalf("expected 2 disk reads, got %d", st.Reads)
	}
}

func TestCorruptionDetected(t *testing.T) {
	for _, comp := range []Compression{None, Archival} {
		s := NewStore(1 << 20)
		id, _ := s.Put(bytes.Repeat([]byte("data"), 100), comp)
		if err := s.Corrupt(id); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(id); err == nil {
			t.Fatalf("%v: corruption not detected", comp)
		}
	}
}

func TestResetStats(t *testing.T) {
	s := NewStore(1 << 20)
	id, _ := s.Put([]byte("x"), None)
	s.Get(id)
	s.ResetStats()
	if st := s.Stats(); st != (IOStats{}) {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestDecompressAccounting(t *testing.T) {
	s := NewStore(0)
	data := bytes.Repeat([]byte("z"), 1000)
	id, _ := s.Put(data, Archival)
	s.Get(id)
	st := s.Stats()
	if st.DecompressCalls != 1 || st.BytesDecompressd != 1000 {
		t.Fatalf("decompress stats: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(1 << 16)
	var ids []BlobID
	for i := 0; i < 50; i++ {
		data := make([]byte, 100+i)
		rand.New(rand.NewSource(int64(i))).Read(data)
		id, err := s.Put(data, None)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				id := ids[rng.Intn(len(ids))]
				if _, err := s.Get(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
