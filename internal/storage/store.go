// Package storage is the engine's storage substrate: a blob store holding
// column segments, dictionaries, and delta-store pages, fronted by an LRU
// buffer pool with byte-level I/O accounting. It stands in for SQL Server's
// storage engine; experiments read its counters instead of wall-clock disk
// time, which keeps the paper's relative comparisons (eliminated vs scanned
// segments, archival vs normal tier) observable at laptop scale.
//
// The archival tier applies stdlib DEFLATE (LZ77+Huffman) over already
// columnstore-compressed bytes, standing in for Microsoft XPRESS — the same
// algorithm family with the same ratio-versus-CPU trade-off direction.
package storage

import (
	"bytes"
	"compress/flate"
	"container/list"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// BlobID identifies a blob within a Store.
type BlobID uint64

// Compression selects the at-rest representation of a blob.
type Compression uint8

// Blob compression tiers.
const (
	None     Compression = iota // stored as written
	Archival                    // DEFLATE-compressed at rest (COLUMNSTORE_ARCHIVE)
)

func (c Compression) String() string {
	if c == Archival {
		return "ARCHIVE"
	}
	return "NONE"
}

// IOStats aggregates storage-level counters. All fields are cumulative since
// the last ResetStats.
type IOStats struct {
	Reads            int64 // blob reads that missed the buffer pool ("disk" reads)
	Writes           int64 // blob writes
	BytesRead        int64 // at-rest bytes read from "disk"
	BytesWritten     int64 // at-rest bytes written
	CacheHits        int64
	CacheMisses      int64
	DecompressCalls  int64 // archival blobs inflated
	BytesDecompressd int64 // logical bytes produced by inflation
	Retries          int64 // read attempts repeated after a transient fault
	WriteRetries     int64 // write attempts repeated after a transient fault
	FaultsInjected   int64 // faults raised by the attached FaultInjector
}

type blobMeta struct {
	comp     Compression
	rawLen   int
	diskLen  int
	checksum uint32 // crc32 of the raw (uncompressed) bytes
}

// Store is an in-process blob store with a buffer pool. It is safe for
// concurrent use.
type Store struct {
	mu     sync.Mutex
	blobs  map[BlobID][]byte
	meta   map[BlobID]blobMeta
	nextID uint64

	// quarantined holds blobs the scrubber confirmed corrupt on every copy
	// (keyed to the corruption cause). They are never served; Get fails
	// with a QuarantinedError. Lazily allocated.
	quarantined map[BlobID]error

	// Buffer pool: LRU over decompressed blob bytes. With a shared budget
	// attached, capacity checks go through it instead of cacheCap, so every
	// store sharing the budget competes for one process-wide pool.
	cacheCap   int64
	cacheBytes int64
	cache      map[BlobID]*list.Element
	lru        *list.List // front = most recent; values are *cacheEntry
	budget     *Budget    // nil = private pool of cacheCap bytes

	// statsMu serializes Stats against ResetStats so a snapshot taken during
	// a reset never mixes pre- and post-reset counters. Hot-path increments
	// stay lock-free atomics.
	statsMu sync.Mutex
	stats   struct {
		reads, writes, bytesRead, bytesWritten atomic.Int64
		hits, misses, decompCalls, decompBytes atomic.Int64
		retries, writeRetries                  atomic.Int64
	}

	// Fault-tolerance knobs: an optional fault injector on the read/write
	// paths, and the retry policy for transient read failures.
	fault atomic.Pointer[FaultInjector]
	retry atomic.Pointer[RetryPolicy]

	// Optional disk backing: when attached, Put writes through to a blob
	// file and Delete removes it.
	backing atomic.Pointer[DiskBacking]
}

type cacheEntry struct {
	id       BlobID
	data     []byte
	budgeted bool // bytes reserved from the shared budget, not the private cap
}

// DefaultBufferPoolBytes is the default buffer pool capacity.
const DefaultBufferPoolBytes = 64 << 20

// NewStore creates a store with the given buffer pool capacity in bytes.
// A capacity of 0 disables caching (every read is a "disk" read).
func NewStore(bufferPoolBytes int64) *Store {
	return &Store{
		blobs:    make(map[BlobID][]byte),
		meta:     make(map[BlobID]blobMeta),
		cacheCap: bufferPoolBytes,
		cache:    make(map[BlobID]*list.Element),
		lru:      list.New(),
	}
}

// SetCacheBudget attaches a shared cache budget: the buffer pool's capacity
// checks go through the budget (shared with other stores) instead of the
// store's private cap. Attach before the store sees traffic; entries cached
// earlier keep their private accounting until evicted.
func (s *Store) SetCacheBudget(b *Budget) {
	s.mu.Lock()
	s.budget = b
	s.mu.Unlock()
}

// SetFaultInjector attaches (or, with nil, removes) a fault injector on the
// store's read and write paths. Safe to call concurrently with I/O.
func (s *Store) SetFaultInjector(f *FaultInjector) { s.fault.Store(f) }

// SetRetryPolicy overrides the retry policy for transient read failures.
func (s *Store) SetRetryPolicy(p RetryPolicy) { s.retry.Store(&p) }

func (s *Store) retryPolicy() RetryPolicy {
	if p := s.retry.Load(); p != nil {
		return *p
	}
	return DefaultRetryPolicy()
}

// Put stores data under a fresh BlobID at the given compression tier and
// returns the id. The input slice is not retained.
//
// Transient write faults are retried with the same bounded exponential
// backoff as Get: blob writes are idempotent up to id allocation (the id is
// assigned only after the fault window), so retrying inside Put is safe and
// spares every writer — tuple mover, bulk load, spill — its own retry loop.
// A fault that outlives the budget surfaces as a TransientError and the
// caller owns the durability decision (the mover re-queues its delta store;
// bulk loads fail the statement).
func (s *Store) Put(data []byte, comp Compression) (BlobID, error) {
	if f := s.fault.Load(); f != nil {
		policy := s.retryPolicy()
		attempts := max(policy.MaxAttempts, 1)
		for attempt := 0; ; attempt++ {
			err := f.beforeWrite()
			if err == nil {
				break
			}
			if !IsTransient(err) || attempt+1 >= attempts {
				return 0, err
			}
			s.stats.writeRetries.Add(1)
			mWriteRetries.Inc()
			time.Sleep(policy.backoff(attempt))
		}
	}
	if f := s.fault.Load(); f != nil {
		if err := f.beforeDurable(); err != nil {
			// Deterministic durability faults are never retried: injected
			// ENOSPC persists until cleared (the caller degrades to
			// read-only), and an injected fsync failure poisons through the
			// backing's fail hook exactly like a real one.
			var fe *FsyncError
			if errors.As(err, &fe) {
				if b := s.backing.Load(); b != nil {
					b.notifySyncFail(err)
				}
			}
			return 0, err
		}
	}
	sum := crc32.ChecksumIEEE(data)
	var onDisk []byte
	switch comp {
	case None:
		onDisk = append([]byte(nil), data...)
	case Archival:
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return 0, fmt.Errorf("storage: init deflate: %w", err)
		}
		if _, err := w.Write(data); err != nil {
			return 0, fmt.Errorf("storage: deflate: %w", err)
		}
		if err := w.Close(); err != nil {
			return 0, fmt.Errorf("storage: deflate close: %w", err)
		}
		onDisk = buf.Bytes()
	default:
		return 0, fmt.Errorf("storage: unknown compression %d", comp)
	}

	meta := blobMeta{comp: comp, rawLen: len(data), diskLen: len(onDisk), checksum: sum}
	s.mu.Lock()
	s.nextID++
	id := BlobID(s.nextID)
	s.blobs[id] = onDisk
	s.meta[id] = meta
	s.mu.Unlock()

	if b := s.backing.Load(); b != nil {
		if err := b.write(id, onDisk, meta); err != nil {
			// Undo the in-memory insert: a blob that is not on disk must not
			// be visible, or recovery would diverge from the live store.
			s.mu.Lock()
			delete(s.blobs, id)
			delete(s.meta, id)
			s.mu.Unlock()
			return 0, err
		}
	}

	s.stats.writes.Add(1)
	s.stats.bytesWritten.Add(int64(len(onDisk)))
	mWrites.Inc()
	mWrittenBytes.Add(int64(len(onDisk)))
	return id, nil
}

// Get returns the raw (decompressed) bytes of a blob. The returned slice is
// shared with the buffer pool and must not be modified.
//
// Transient read faults (see FaultInjector) are retried with exponential
// backoff under the store's RetryPolicy. Checksum mismatches fail fast as
// CorruptionErrors naming the blob: re-reading cannot repair wrong at-rest
// bytes, so burning retry budget on them only delays the report.
func (s *Store) Get(id BlobID) ([]byte, error) {
	s.mu.Lock()
	if qerr, ok := s.quarantined[id]; ok {
		s.mu.Unlock()
		mQuarantineServes.Inc()
		return nil, &QuarantinedError{Blob: id, Cause: qerr}
	}
	if el, ok := s.cache[id]; ok {
		s.lru.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		s.mu.Unlock()
		s.stats.hits.Add(1)
		mCacheHits.Inc()
		return data, nil
	}
	onDisk, ok := s.blobs[id]
	meta := s.meta[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: blob %d not found", id)
	}
	s.stats.misses.Add(1)
	mCacheMisses.Inc()

	policy := s.retryPolicy()
	attempts := max(policy.MaxAttempts, 1)
	for attempt := 0; ; attempt++ {
		raw, err := s.readOnce(id, onDisk, meta)
		if err == nil {
			s.cacheInsert(id, raw)
			return raw, nil
		}
		if !IsTransient(err) || attempt+1 >= attempts {
			return nil, err
		}
		s.stats.retries.Add(1)
		mRetries.Inc()
		time.Sleep(policy.backoff(attempt))
	}
}

// readOnce performs one "disk" read attempt: fault hooks, inflation, and
// checksum verification.
func (s *Store) readOnce(id BlobID, onDisk []byte, meta blobMeta) ([]byte, error) {
	f := s.fault.Load()
	if f != nil {
		if err := f.beforeRead(id); err != nil {
			return nil, err
		}
	}
	s.stats.reads.Add(1)
	s.stats.bytesRead.Add(int64(len(onDisk)))
	mReads.Inc()
	mReadBytes.Add(int64(len(onDisk)))

	var raw []byte
	switch meta.comp {
	case None:
		raw = onDisk
	case Archival:
		r := flate.NewReader(bytes.NewReader(onDisk))
		var err error
		raw, err = io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("storage: inflate blob %d: %w", id, err)
		}
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("storage: inflate close blob %d: %w", id, err)
		}
		s.stats.decompCalls.Add(1)
		s.stats.decompBytes.Add(int64(len(raw)))
	}
	if f != nil {
		raw = f.corruptRead(raw)
	}
	if crc32.ChecksumIEEE(raw) != meta.checksum {
		mCorruption.Inc()
		return nil, &CorruptionError{Blob: id}
	}
	return raw, nil
}

func (s *Store) cacheInsert(id BlobID, data []byte) {
	n := int64(len(data))
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cache[id]; ok {
		return
	}
	if s.budget != nil {
		if n > s.budget.Cap() {
			return
		}
		// Make room from our own LRU tail first; if our cache is already
		// empty the budget is held by other stores and this read stays
		// uncached (their entries age out under their own insert pressure).
		for !s.budget.TryReserve(n) {
			if !s.evictTailLocked() {
				return
			}
		}
	} else if s.cacheCap <= 0 || n > s.cacheCap {
		return
	}
	el := s.lru.PushFront(&cacheEntry{id: id, data: data, budgeted: s.budget != nil})
	s.cache[id] = el
	s.cacheBytes += n
	if s.budget == nil {
		for s.cacheBytes > s.cacheCap {
			if !s.evictTailLocked() {
				break
			}
		}
	}
}

// evictTailLocked drops the LRU tail entry, returning false when the cache
// is empty. Caller holds s.mu.
func (s *Store) evictTailLocked() bool {
	back := s.lru.Back()
	if back == nil {
		return false
	}
	s.removeEntryLocked(back)
	return true
}

// removeEntryLocked unlinks one cache entry and returns its bytes to
// whichever pool accounted them. Caller holds s.mu.
func (s *Store) removeEntryLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	s.lru.Remove(el)
	delete(s.cache, e.id)
	s.cacheBytes -= int64(len(e.data))
	if e.budgeted && s.budget != nil {
		s.budget.Release(int64(len(e.data)))
	}
}

// Delete removes a blob, evicts it from the buffer pool, and removes its
// backing file if a disk backing is attached.
func (s *Store) Delete(id BlobID) {
	s.mu.Lock()
	delete(s.blobs, id)
	delete(s.meta, id)
	if el, ok := s.cache[id]; ok {
		s.removeEntryLocked(el)
	}
	s.mu.Unlock()
	if b := s.backing.Load(); b != nil {
		b.remove(id)
	}
}

// SizeOf returns a blob's at-rest and raw sizes.
func (s *Store) SizeOf(id BlobID) (diskBytes, rawBytes int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.meta[id]
	if !ok {
		return 0, 0, fmt.Errorf("storage: blob %d not found", id)
	}
	return m.diskLen, m.rawLen, nil
}

// SizeOnDisk totals the at-rest bytes of all blobs.
func (s *Store) SizeOnDisk() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, m := range s.meta {
		total += int64(m.diskLen)
	}
	return total
}

// EvictAll empties the buffer pool (used by benchmarks to measure cold reads).
func (s *Store) EvictAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.evictTailLocked() {
	}
	s.cache = make(map[BlobID]*list.Element)
	s.lru.Init()
	s.cacheBytes = 0
}

// Corrupt flips a byte of the at-rest representation of a blob and evicts it
// from the cache. Tests use it to exercise checksum verification.
func (s *Store) Corrupt(id BlobID) error {
	s.mu.Lock()
	b, ok := s.blobs[id]
	if !ok || len(b) == 0 {
		s.mu.Unlock()
		return fmt.Errorf("storage: blob %d not found or empty", id)
	}
	b[len(b)/2] ^= 0xFF
	s.mu.Unlock()
	s.EvictAll()
	return nil
}

// Stats returns a snapshot of the store's I/O counters. The snapshot is
// consistent with respect to ResetStats: a concurrent reset either precedes
// the whole snapshot or follows it, never splits it.
func (s *Store) Stats() IOStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := IOStats{
		Reads:            s.stats.reads.Load(),
		Writes:           s.stats.writes.Load(),
		BytesRead:        s.stats.bytesRead.Load(),
		BytesWritten:     s.stats.bytesWritten.Load(),
		CacheHits:        s.stats.hits.Load(),
		CacheMisses:      s.stats.misses.Load(),
		DecompressCalls:  s.stats.decompCalls.Load(),
		BytesDecompressd: s.stats.decompBytes.Load(),
		Retries:          s.stats.retries.Load(),
		WriteRetries:     s.stats.writeRetries.Load(),
	}
	if f := s.fault.Load(); f != nil {
		st.FaultsInjected = f.Injected()
	}
	return st
}

// ResetStats zeroes the I/O counters. It holds the same lock as Stats so a
// concurrent snapshot never observes some counters reset and others not.
func (s *Store) ResetStats() {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.stats.reads.Store(0)
	s.stats.writes.Store(0)
	s.stats.bytesRead.Store(0)
	s.stats.bytesWritten.Store(0)
	s.stats.hits.Store(0)
	s.stats.misses.Store(0)
	s.stats.decompCalls.Store(0)
	s.stats.decompBytes.Store(0)
	s.stats.retries.Store(0)
	s.stats.writeRetries.Store(0)
}
