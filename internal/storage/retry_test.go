package storage

import (
	"sync"
	"testing"
	"time"
)

// TestPutRetriesTransientFaults: Put rides out transient write faults with
// bounded retry+backoff, counts each retry, and still stores the blob.
func TestPutRetriesTransientFaults(t *testing.T) {
	s := NewStore(0)
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond})
	// ~50% write fault rate: with 8 attempts, failing all of them has
	// probability 2^-8 per Put; over 50 Puts a spurious total failure is
	// still possible, so only assert that successes happened and retries
	// were counted.
	s.SetFaultInjector(NewFaultInjector(FaultConfig{WriteErrorRate: 0.5, Seed: 42}))
	var ok int
	for i := 0; i < 50; i++ {
		if id, err := s.Put([]byte("payload"), None); err == nil {
			if got, gerr := s.Get(id); gerr != nil || string(got) != "payload" {
				t.Fatalf("stored blob unreadable: %v", gerr)
			}
			ok++
		} else if !IsTransient(err) {
			t.Fatalf("non-transient error from Put: %v", err)
		}
	}
	if ok < 40 {
		t.Fatalf("only %d/50 Puts survived a 50%% fault rate with 8 attempts", ok)
	}
	if s.Stats().WriteRetries == 0 {
		t.Fatal("no write retries counted under a 50% fault rate")
	}
}

// TestPutRetryExhaustion: a 100% fault rate exhausts the budget; the error
// is transient-typed and retries were attempted.
func TestPutRetryExhaustion(t *testing.T) {
	s := NewStore(0)
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond})
	s.SetFaultInjector(NewFaultInjector(FaultConfig{WriteErrorRate: 1, Seed: 7}))
	_, err := s.Put([]byte("doomed"), None)
	if !IsTransient(err) {
		t.Fatalf("want transient error after exhaustion, got %v", err)
	}
	if got := s.Stats().WriteRetries; got != 2 { // 3 attempts = 2 retries
		t.Fatalf("counted %d retries, want 2", got)
	}
}

// TestInjectorSeedExposed: the injector reports its resolved seed — the
// handle needed to replay a failing fault sequence.
func TestInjectorSeedExposed(t *testing.T) {
	if got := NewFaultInjector(FaultConfig{Seed: 1234}).Seed(); got != 1234 {
		t.Fatalf("explicit seed not preserved: %d", got)
	}
	a := NewFaultInjector(FaultConfig{}).Seed()
	if a == 0 {
		t.Fatal("clock-derived seed resolved to 0; cannot be replayed")
	}
}

// TestStatsResetRace hammers Stats and ResetStats concurrently with
// reads/writes; run under -race this pins down the snapshot/reset
// serialization (ResetStats used to tear concurrent Stats snapshots).
func TestStatsResetRace(t *testing.T) {
	s := NewStore(1 << 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := s.Put([]byte("race-payload"), None)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(id); err != nil {
					t.Error(err)
					return
				}
				s.Delete(id)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if st.Writes < 0 || st.Reads < 0 {
					t.Errorf("negative counters in snapshot: %+v", st)
					return
				}
				if i%10 == 0 {
					s.ResetStats()
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
