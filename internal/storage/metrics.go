package storage

import "apollo/internal/metrics"

// Process-wide series for the storage layer, resolved once at init. The
// per-Store IOStats counters remain the authoritative per-store numbers;
// these aggregate across every store in the process for the .metrics dump.
var (
	mReads = metrics.Default.Counter("apollo_storage_reads_total",
		"blob read attempts that reached the disk path (cache misses, incl. retries)")
	mReadBytes = metrics.Default.Counter("apollo_storage_read_bytes_total",
		"at-rest bytes read from the disk path")
	mWrites = metrics.Default.Counter("apollo_storage_writes_total",
		"blob writes")
	mWrittenBytes = metrics.Default.Counter("apollo_storage_written_bytes_total",
		"at-rest bytes written")
	mCacheHits = metrics.Default.Counter("apollo_storage_cache_hits_total",
		"buffer-pool hits")
	mCacheMisses = metrics.Default.Counter("apollo_storage_cache_misses_total",
		"buffer-pool misses")
	mRetries = metrics.Default.Counter("apollo_storage_retries_total",
		"read attempts repeated after a transient fault")
	mWriteRetries = metrics.Default.Counter("apollo_storage_write_retries_total",
		"write attempts repeated after a transient fault")
	mCorruption = metrics.Default.Counter("apollo_storage_corruption_total",
		"reads failing checksum verification")
	mFaultsInjected = metrics.Default.Counter("apollo_storage_faults_injected_total",
		"faults raised by attached fault injectors")
	mQuarantined = metrics.Default.Counter("apollo_storage_quarantined_total",
		"blobs quarantined after at-rest corruption was confirmed on both copies")
	mQuarantineServes = metrics.Default.Counter("apollo_storage_quarantine_refused_reads_total",
		"reads refused because the blob is quarantined")
	mScrubRepairs = metrics.Default.Counter("apollo_storage_scrub_repairs_total",
		"blobs repaired by the scrubber from the surviving good copy (memory or backing file)")
)
