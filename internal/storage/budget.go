package storage

import "sync/atomic"

// Budget is a byte budget shared by several buffer pools. A multi-tenant
// process attaches one Budget to every tenant's Store (SetCacheBudget) so all
// block/segment caches in the process draw from one memory pool instead of
// each sizing its own: a hot tenant can use most of the pool while idle
// tenants hold almost nothing, and the process-wide cache footprint stays
// bounded no matter how many databases are open.
//
// Reservation is strict (TryReserve never overshoots the cap); fairness is
// left to the stores: a store that cannot reserve evicts its own LRU tail
// first and, if its cache is already empty, simply skips caching that read.
// Eviction pressure therefore lands on the store doing the inserting, which
// approximates global LRU well enough under skewed tenant traffic without a
// cross-store lock.
type Budget struct {
	cap  int64
	used atomic.Int64
}

// NewBudget creates a budget of cap bytes. A non-positive cap admits nothing
// (every TryReserve fails), which disables caching on attached stores.
func NewBudget(cap int64) *Budget { return &Budget{cap: cap} }

// TryReserve atomically reserves n bytes, reporting whether the reservation
// fit under the cap.
func (b *Budget) TryReserve(n int64) bool {
	for {
		used := b.used.Load()
		if used+n > b.cap {
			return false
		}
		if b.used.CompareAndSwap(used, used+n) {
			return true
		}
	}
}

// Release returns n previously reserved bytes.
func (b *Budget) Release(n int64) { b.used.Add(-n) }

// Cap returns the budget capacity in bytes.
func (b *Budget) Cap() int64 { return b.cap }

// Used returns the currently reserved bytes.
func (b *Budget) Used() int64 { return b.used.Load() }
