package storage

import (
	"errors"
	"testing"
	"time"
)

func putGet(t *testing.T, s *Store, data []byte, comp Compression) BlobID {
	t.Helper()
	id, err := s.Put(data, comp)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	return id
}

// A 100% read-error rate with retries exhausted must surface a typed
// TransientError naming the blob; dropping the rate to zero recovers.
func TestTransientFaultsExhaustRetries(t *testing.T) {
	s := NewStore(0) // no cache: every Get is a disk read
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond})
	id := putGet(t, s, []byte("hello columnstore"), None)

	s.SetFaultInjector(NewFaultInjector(FaultConfig{ReadErrorRate: 1, Seed: 1}))
	_, err := s.Get(id)
	if err == nil {
		t.Fatal("Get succeeded under 100% fault rate")
	}
	if !IsTransient(err) {
		t.Fatalf("error not transient: %v", err)
	}
	var te *TransientError
	if !errors.As(err, &te) || te.Blob != id {
		t.Fatalf("transient error does not name blob %d: %v", id, err)
	}
	if got := s.Stats().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2 (3 attempts)", got)
	}

	s.SetFaultInjector(nil)
	if _, err := s.Get(id); err != nil {
		t.Fatalf("Get after clearing faults: %v", err)
	}
}

// A fault rate low enough for the retry budget must succeed transparently,
// recording the retries in the stats.
func TestTransientFaultsRetriedToSuccess(t *testing.T) {
	s := NewStore(0)
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 50, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond})
	s.SetFaultInjector(NewFaultInjector(FaultConfig{ReadErrorRate: 0.5, Seed: 42}))
	id := putGet(t, s, []byte("retry me"), Archival)

	for i := 0; i < 20; i++ {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("Get %d failed despite retry budget: %v", i, err)
		}
	}
	if s.Stats().Retries == 0 {
		t.Fatal("no retries recorded at 50% fault rate")
	}
}

// Injected bit-flip corruption must fail fast as a CorruptionError naming
// the blob — and must not damage the at-rest bytes.
func TestInjectedCorruptionFailsFast(t *testing.T) {
	s := NewStore(0)
	id := putGet(t, s, []byte("precious bytes"), None)

	s.SetFaultInjector(NewFaultInjector(FaultConfig{CorruptionRate: 1, Seed: 7}))
	before := s.Stats().Reads
	_, err := s.Get(id)
	var ce *CorruptionError
	if !errors.As(err, &ce) || ce.Blob != id {
		t.Fatalf("want CorruptionError for blob %d, got %v", id, err)
	}
	if IsTransient(err) {
		t.Fatal("corruption classified as transient")
	}
	if got := s.Stats().Reads - before; got != 1 {
		t.Fatalf("corruption was retried: %d read attempts", got)
	}

	// At-rest data is intact: clearing the injector recovers the blob.
	s.SetFaultInjector(nil)
	data, err := s.Get(id)
	if err != nil || string(data) != "precious bytes" {
		t.Fatalf("blob damaged by injector: %q, %v", data, err)
	}
}

// The legacy Corrupt helper (persistent damage) also classifies as
// corruption under the typed-error API.
func TestPersistentCorruptionTyped(t *testing.T) {
	s := NewStore(DefaultBufferPoolBytes)
	id := putGet(t, s, make([]byte, 1024), None)
	if err := s.Corrupt(id); err != nil {
		t.Fatal(err)
	}
	_, err := s.Get(id)
	if !IsCorruption(err) {
		t.Fatalf("want corruption error, got %v", err)
	}
}

// Write faults surface on Put as transient errors.
func TestWriteFaults(t *testing.T) {
	s := NewStore(0)
	s.SetFaultInjector(NewFaultInjector(FaultConfig{WriteErrorRate: 1, Seed: 3}))
	if _, err := s.Put([]byte("x"), None); !IsTransient(err) {
		t.Fatalf("want transient write fault, got %v", err)
	}
	if s.Stats().FaultsInjected == 0 {
		t.Fatal("injector did not count the fault")
	}
}

// Cache hits bypass the injector entirely: hot data stays readable even
// under a 100% device fault rate.
func TestCacheHitsBypassFaults(t *testing.T) {
	s := NewStore(DefaultBufferPoolBytes)
	id := putGet(t, s, []byte("hot"), None)
	if _, err := s.Get(id); err != nil { // populate cache
		t.Fatal(err)
	}
	s.SetFaultInjector(NewFaultInjector(FaultConfig{ReadErrorRate: 1, Seed: 9}))
	if _, err := s.Get(id); err != nil {
		t.Fatalf("cache hit hit the injector: %v", err)
	}
}
