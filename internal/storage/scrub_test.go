package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
)

func newBackedStore(t *testing.T) (*Store, *DiskBacking) {
	t.Helper()
	s := NewStore(1 << 20)
	b, err := OpenDiskBacking(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachBacking(b)
	return s, b
}

// Regression test for the "best effort" syncDir: a directory-fsync failure
// on the publish/rename path must propagate as the Put's error AND fire the
// sync-fail (poison) hook — not be swallowed.
func TestDirSyncFailurePropagatesAndPoisons(t *testing.T) {
	s, b := newBackedStore(t)
	var hookErr atomic.Pointer[error]
	b.SetSyncFailHook(func(err error) { hookErr.Store(&err) })

	if _, err := s.Put([]byte("healthy"), None); err != nil {
		t.Fatalf("healthy put: %v", err)
	}

	boom := errors.New("injected directory fsync failure")
	b.SetDirSyncForTest(func(string) error { return boom })
	id, err := s.Put([]byte("doomed"), None)
	if err == nil {
		t.Fatal("Put succeeded through a failed directory fsync")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Put error %v does not propagate the dir-fsync failure", err)
	}
	if p := hookErr.Load(); p == nil || !errors.Is(*p, boom) {
		t.Fatal("sync-fail hook did not fire on directory-fsync failure")
	}
	// The failed put must not have left a visible blob.
	if id != 0 {
		t.Fatalf("failed Put returned id %d", id)
	}

	// An ENOSPC dir-fsync failure propagates but does NOT poison (space
	// exhaustion is recoverable).
	hookErr.Store(nil)
	b.SetDirSyncForTest(func(string) error { return fmt.Errorf("sync dir: %w", syscall.ENOSPC) })
	if _, err := s.Put([]byte("full"), None); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put under dir ENOSPC: got %v, want ENOSPC", err)
	}
	if hookErr.Load() != nil {
		t.Fatal("ENOSPC dir-fsync failure must not fire the poison hook")
	}

	b.SetDirSyncForTest(nil)
	if _, err := s.Put([]byte("recovered"), None); err != nil {
		t.Fatalf("Put after restoring dir fsync: %v", err)
	}
}

func TestDeterministicNoSpaceInjection(t *testing.T) {
	s, _ := newBackedStore(t)
	s.SetFaultInjector(NewFaultInjector(FaultConfig{NoSpaceAtWrite: 3, Seed: 1}))

	for i := 0; i < 2; i++ {
		if _, err := s.Put([]byte("ok"), None); err != nil {
			t.Fatalf("put %d before exhaustion: %v", i, err)
		}
	}
	// Write 3 and everything after fail with ENOSPC.
	for i := 0; i < 3; i++ {
		_, err := s.Put([]byte("full"), None)
		if !IsNoSpace(err) {
			t.Fatalf("put after exhaustion: got %v, want ENOSPC", err)
		}
		var nse *NoSpaceError
		if !errors.As(err, &nse) {
			t.Fatalf("error %v is not a *NoSpaceError", err)
		}
	}
	if err := s.WriteProbe(); !IsNoSpace(err) {
		t.Fatalf("WriteProbe while injector full: got %v, want ENOSPC", err)
	}
	// Clearing the injector frees the "disk".
	s.SetFaultInjector(nil)
	if err := s.WriteProbe(); err != nil {
		t.Fatalf("WriteProbe after clearing injector: %v", err)
	}
	if _, err := s.Put([]byte("again"), None); err != nil {
		t.Fatalf("put after clearing injector: %v", err)
	}
}

func TestDeterministicFsyncFailureInjectionPoisons(t *testing.T) {
	s, b := newBackedStore(t)
	var hookErr atomic.Pointer[error]
	b.SetSyncFailHook(func(err error) { hookErr.Store(&err) })
	s.SetFaultInjector(NewFaultInjector(FaultConfig{FailSyncAtWrite: 2, Seed: 1}))

	if _, err := s.Put([]byte("one"), None); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	_, err := s.Put([]byte("two"), None)
	var fe *FsyncError
	if !errors.As(err, &fe) {
		t.Fatalf("put 2: got %v, want *FsyncError", err)
	}
	if hookErr.Load() == nil {
		t.Fatal("injected fsync failure did not fire the sync-fail hook")
	}
}

func TestScrubRepairsBackingFromMemory(t *testing.T) {
	s, b := newBackedStore(t)
	payload := bytes.Repeat([]byte("segment-bytes-"), 64)
	id, err := s.Put(payload, None)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the backing FILE only (memory stays good).
	path := b.path(id)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-3] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	out, n, err := s.ScrubBlob(id)
	if err != nil {
		t.Fatal(err)
	}
	if out != ScrubRepairedBacking {
		t.Fatalf("outcome %v, want ScrubRepairedBacking", out)
	}
	if n <= 0 {
		t.Fatal("no bytes accounted")
	}
	// A second scrub verifies both copies clean.
	if out, _, err = s.ScrubBlob(id); err != nil || out != ScrubOK {
		t.Fatalf("post-repair scrub: outcome %v err %v, want ScrubOK", out, err)
	}
	if got, err := s.Get(id); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get after repair: err=%v", err)
	}
}

func TestScrubRepairsMemoryFromBacking(t *testing.T) {
	s, _ := newBackedStore(t)
	payload := bytes.Repeat([]byte("cold-archival-"), 128)
	id, err := s.Put(payload, Archival)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the IN-MEMORY at-rest copy only (Corrupt never touches the
	// backing file) — models bit rot in the resident copy.
	if err := s.Corrupt(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); err == nil {
		t.Fatal("Get of memory-corrupted blob unexpectedly succeeded")
	}

	out, _, err := s.ScrubBlob(id)
	if err != nil {
		t.Fatal(err)
	}
	if out != ScrubRepairedMemory {
		t.Fatalf("outcome %v, want ScrubRepairedMemory", out)
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get after memory repair: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("repaired blob does not round-trip")
	}
}

func TestScrubQuarantinesWhenAllCopiesBad(t *testing.T) {
	s, b := newBackedStore(t)
	id, err := s.Put([]byte("doomed-data-doomed-data"), None)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt memory AND the backing file.
	if err := s.Corrupt(id); err != nil {
		t.Fatal(err)
	}
	path := b.path(id)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-2] ^= 0x55
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	out, _, err := s.ScrubBlob(id)
	if err != nil {
		t.Fatal(err)
	}
	if out != ScrubQuarantined {
		t.Fatalf("outcome %v, want ScrubQuarantined", out)
	}
	// Quarantined blobs are never served.
	_, gerr := s.Get(id)
	if !IsQuarantined(gerr) {
		t.Fatalf("Get of quarantined blob: got %v, want QuarantinedError", gerr)
	}
	if !IsCorruption(gerr) {
		t.Fatalf("quarantine error should still classify as corruption: %v", gerr)
	}
	if got := s.Quarantined(); len(got) != 1 || got[0] != id {
		t.Fatalf("Quarantined() = %v, want [%d]", got, id)
	}
	// Re-scrubbing a quarantined blob is a no-op skip.
	if out, _, err := s.ScrubBlob(id); err != nil || out != ScrubSkipped {
		t.Fatalf("re-scrub: outcome %v err %v, want ScrubSkipped", out, err)
	}
}

func TestScrubMissingBackingFileRewritten(t *testing.T) {
	s, b := newBackedStore(t)
	id, err := s.Put([]byte("evaporated-file"), None)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(b.path(id)); err != nil {
		t.Fatal(err)
	}
	out, _, err := s.ScrubBlob(id)
	if err != nil {
		t.Fatal(err)
	}
	if out != ScrubRepairedBacking {
		t.Fatalf("outcome %v, want ScrubRepairedBacking", out)
	}
	if _, err := os.Stat(b.path(id)); err != nil {
		t.Fatalf("backing file not rewritten: %v", err)
	}
}
