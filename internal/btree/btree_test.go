package btree

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func val(k uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], k*7)
	return b[:]
}

func TestPutGet(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(1); ok {
		t.Fatal("empty tree has key")
	}
	tr.Put(1, val(1))
	tr.Put(2, val(2))
	got, ok := tr.Get(1)
	if !ok || binary.LittleEndian.Uint64(got) != 7 {
		t.Fatal("Get wrong")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Replace does not grow.
	tr.Put(1, val(100))
	if tr.Len() != 2 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
	got, _ = tr.Get(1)
	if binary.LittleEndian.Uint64(got) != 700 {
		t.Fatal("replace lost")
	}
}

func TestLargeSequentialInsert(t *testing.T) {
	tr := New()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		tr.Put(i, val(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{0, 1, n / 2, n - 1} {
		v, ok := tr.Get(k)
		if !ok || binary.LittleEndian.Uint64(v) != k*7 {
			t.Fatalf("Get(%d) wrong", k)
		}
	}
}

func TestReverseAndRandomInsert(t *testing.T) {
	for name, keys := range map[string][]uint64{
		"reverse": genKeys(5000, func(i int) uint64 { return uint64(5000 - i) }),
		"random":  shuffled(5000, 99),
	} {
		tr := New()
		for _, k := range keys {
			tr.Put(k, val(k))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, k := range keys {
			if _, ok := tr.Get(k); !ok {
				t.Fatalf("%s: lost key %d", name, k)
			}
		}
	}
}

func genKeys(n int, f func(int) uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func shuffled(n int, seed int64) []uint64 {
	out := genKeys(n, func(i int) uint64 { return uint64(i) })
	rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 10000
	for _, k := range shuffled(n, 3) {
		tr.Put(k, val(k))
	}
	// Delete every other key.
	for i := uint64(0); i < n; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New()
	const n = 3000
	for _, k := range shuffled(n, 17) {
		tr.Put(k, val(k))
	}
	for _, k := range shuffled(n, 18) {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i += 10 {
		tr.Put(i, val(i))
	}
	var got []uint64
	tr.Ascend(15, 65, func(k uint64, _ []byte) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{20, 30, 40, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("Ascend = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.AscendAll(func(uint64, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range shuffled(1000, 5) {
		tr.Put(k+100, val(k))
	}
	if mn, ok := tr.Min(); !ok || mn != 100 {
		t.Fatalf("Min = %d", mn)
	}
	if mx, ok := tr.Max(); !ok || mx != 1099 {
		t.Fatalf("Max = %d", mx)
	}
}

// Property test: random interleaved Put/Delete against a map oracle, with
// invariant checks along the way.
func TestRandomOpsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	tr := New()
	oracle := map[uint64][]byte{}
	for op := 0; op < 30000; op++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0, 1:
			v := val(k + uint64(op))
			tr.Put(k, v)
			oracle[k] = v
		case 2:
			got := tr.Delete(k)
			_, want := oracle[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(oracle, k)
		}
		if op%5000 == 4999 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle = %d", tr.Len(), len(oracle))
	}
	for k, v := range oracle {
		got, ok := tr.Get(k)
		if !ok || string(got) != string(v) {
			t.Fatalf("Get(%d) mismatch", k)
		}
	}
	// Full ordered iteration matches the oracle.
	seen := 0
	tr.AscendAll(func(k uint64, v []byte) bool {
		if string(oracle[k]) != string(v) {
			t.Fatalf("iteration mismatch at %d", k)
		}
		seen++
		return true
	})
	if seen != len(oracle) {
		t.Fatalf("iterated %d, want %d", seen, len(oracle))
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	v := val(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(uint64(i), v)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := uint64(0); i < n; i++ {
		tr.Put(i, val(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i) % n)
	}
}
