// Package btree implements an in-memory B+tree with uint64 keys and opaque
// byte-slice values. It is the row-organized substrate the columnstore builds
// on: delta stores keep trickle-inserted rows in one (keyed by row locator),
// the row-store baseline uses one as its clustered index, and spill files
// borrow its ordered layout.
package btree

import "fmt"

const (
	// degree is the maximum number of children of an interior node.
	degree    = 64
	maxKeys   = degree - 1
	minKeys   = maxKeys / 2
	maxLeaf   = degree
	minLeafSz = maxLeaf / 2
)

// Tree is a B+tree mapping uint64 keys to byte slices. It is not safe for
// concurrent mutation; the table layer provides synchronization.
type Tree struct {
	root node
	size int
}

type node interface {
	isLeaf() bool
}

type leaf struct {
	keys []uint64
	vals [][]byte
	next *leaf // leaf chain for range scans
	prev *leaf
}

type interior struct {
	keys     []uint64 // keys[i] = smallest key in children[i+1]'s subtree
	children []node
}

func (*leaf) isLeaf() bool     { return true }
func (*interior) isLeaf() bool { return false }

// New returns an empty tree.
func New() *Tree { return &Tree{root: &leaf{}} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// Get returns the value for key, and whether it is present. The returned
// slice aliases the stored value.
func (t *Tree) Get(key uint64) ([]byte, bool) {
	l := t.findLeaf(key)
	i := searchKeys(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		return l.vals[i], true
	}
	return nil, false
}

// searchKeys returns the first index i with keys[i] >= key.
func searchKeys(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (t *Tree) findLeaf(key uint64) *leaf {
	n := t.root
	for !n.isLeaf() {
		in := n.(*interior)
		i := childIndex(in.keys, key)
		n = in.children[i]
	}
	return n.(*leaf)
}

// childIndex returns the child to descend into: the number of separator keys
// <= key.
func childIndex(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Put inserts or replaces the value for key. The value slice is retained.
func (t *Tree) Put(key uint64, val []byte) {
	newChild, sepKey := t.insert(t.root, key, val)
	if newChild != nil {
		t.root = &interior{keys: []uint64{sepKey}, children: []node{t.root, newChild}}
	}
}

// insert adds key/val under n. If n splits, it returns the new right sibling
// and the separator key; otherwise (nil, 0).
func (t *Tree) insert(n node, key uint64, val []byte) (node, uint64) {
	if n.isLeaf() {
		l := n.(*leaf)
		i := searchKeys(l.keys, key)
		if i < len(l.keys) && l.keys[i] == key {
			l.vals[i] = val // replace
			return nil, 0
		}
		l.keys = append(l.keys, 0)
		copy(l.keys[i+1:], l.keys[i:])
		l.keys[i] = key
		l.vals = append(l.vals, nil)
		copy(l.vals[i+1:], l.vals[i:])
		l.vals[i] = val
		t.size++
		if len(l.keys) <= maxLeaf {
			return nil, 0
		}
		// Split leaf.
		mid := len(l.keys) / 2
		right := &leaf{
			keys: append([]uint64(nil), l.keys[mid:]...),
			vals: append([][]byte(nil), l.vals[mid:]...),
			next: l.next,
			prev: l,
		}
		if l.next != nil {
			l.next.prev = right
		}
		l.keys = l.keys[:mid]
		l.vals = l.vals[:mid]
		l.next = right
		return right, right.keys[0]
	}

	in := n.(*interior)
	ci := childIndex(in.keys, key)
	newChild, sepKey := t.insert(in.children[ci], key, val)
	if newChild == nil {
		return nil, 0
	}
	in.keys = append(in.keys, 0)
	copy(in.keys[ci+1:], in.keys[ci:])
	in.keys[ci] = sepKey
	in.children = append(in.children, nil)
	copy(in.children[ci+2:], in.children[ci+1:])
	in.children[ci+1] = newChild
	if len(in.keys) <= maxKeys {
		return nil, 0
	}
	// Split interior: middle key moves up.
	mid := len(in.keys) / 2
	upKey := in.keys[mid]
	right := &interior{
		keys:     append([]uint64(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid]
	in.children = in.children[:mid+1]
	return right, upKey
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key uint64) bool {
	deleted := t.delete(t.root, key)
	if deleted {
		t.size--
		// Collapse a root with a single child.
		if in, ok := t.root.(*interior); ok && len(in.children) == 1 {
			t.root = in.children[0]
		}
	}
	return deleted
}

// delete removes key from n's subtree and rebalances children as needed.
func (t *Tree) delete(n node, key uint64) bool {
	if n.isLeaf() {
		l := n.(*leaf)
		i := searchKeys(l.keys, key)
		if i >= len(l.keys) || l.keys[i] != key {
			return false
		}
		l.keys = append(l.keys[:i], l.keys[i+1:]...)
		l.vals = append(l.vals[:i], l.vals[i+1:]...)
		return true
	}
	in := n.(*interior)
	ci := childIndex(in.keys, key)
	if !t.delete(in.children[ci], key) {
		return false
	}
	t.rebalance(in, ci)
	return true
}

// rebalance fixes an underflowing child ci of in by borrowing from or merging
// with a sibling.
func (t *Tree) rebalance(in *interior, ci int) {
	child := in.children[ci]
	if !underflow(child) {
		return
	}
	// Prefer borrowing from the left sibling, then right; else merge.
	if ci > 0 && canLend(in.children[ci-1]) {
		borrowFromLeft(in, ci)
		return
	}
	if ci < len(in.children)-1 && canLend(in.children[ci+1]) {
		borrowFromRight(in, ci)
		return
	}
	if ci > 0 {
		mergeChildren(in, ci-1)
	} else if ci < len(in.children)-1 {
		mergeChildren(in, ci)
	}
}

func underflow(n node) bool {
	if l, ok := n.(*leaf); ok {
		return len(l.keys) < minLeafSz
	}
	return len(n.(*interior).keys) < minKeys
}

func canLend(n node) bool {
	if l, ok := n.(*leaf); ok {
		return len(l.keys) > minLeafSz
	}
	return len(n.(*interior).keys) > minKeys
}

func borrowFromLeft(in *interior, ci int) {
	if l, ok := in.children[ci].(*leaf); ok {
		left := in.children[ci-1].(*leaf)
		last := len(left.keys) - 1
		l.keys = append([]uint64{left.keys[last]}, l.keys...)
		l.vals = append([][]byte{left.vals[last]}, l.vals...)
		left.keys = left.keys[:last]
		left.vals = left.vals[:last]
		in.keys[ci-1] = l.keys[0]
		return
	}
	c := in.children[ci].(*interior)
	left := in.children[ci-1].(*interior)
	last := len(left.keys) - 1
	// Rotate through the parent separator.
	c.keys = append([]uint64{in.keys[ci-1]}, c.keys...)
	c.children = append([]node{left.children[last+1]}, c.children...)
	in.keys[ci-1] = left.keys[last]
	left.keys = left.keys[:last]
	left.children = left.children[:last+1]
}

func borrowFromRight(in *interior, ci int) {
	if l, ok := in.children[ci].(*leaf); ok {
		right := in.children[ci+1].(*leaf)
		l.keys = append(l.keys, right.keys[0])
		l.vals = append(l.vals, right.vals[0])
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		in.keys[ci] = right.keys[0]
		return
	}
	c := in.children[ci].(*interior)
	right := in.children[ci+1].(*interior)
	c.keys = append(c.keys, in.keys[ci])
	c.children = append(c.children, right.children[0])
	in.keys[ci] = right.keys[0]
	right.keys = right.keys[1:]
	right.children = right.children[1:]
}

// mergeChildren merges child ci+1 into child ci and drops separator ci.
func mergeChildren(in *interior, ci int) {
	if l, ok := in.children[ci].(*leaf); ok {
		right := in.children[ci+1].(*leaf)
		l.keys = append(l.keys, right.keys...)
		l.vals = append(l.vals, right.vals...)
		l.next = right.next
		if right.next != nil {
			right.next.prev = l
		}
	} else {
		c := in.children[ci].(*interior)
		right := in.children[ci+1].(*interior)
		c.keys = append(c.keys, in.keys[ci])
		c.keys = append(c.keys, right.keys...)
		c.children = append(c.children, right.children...)
	}
	in.keys = append(in.keys[:ci], in.keys[ci+1:]...)
	in.children = append(in.children[:ci+1], in.children[ci+2:]...)
}

// Ascend calls fn for each key/value with key in [from, to] in ascending
// order. Iteration stops early if fn returns false.
func (t *Tree) Ascend(from, to uint64, fn func(key uint64, val []byte) bool) {
	l := t.findLeaf(from)
	i := searchKeys(l.keys, from)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if l.keys[i] > to {
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// AscendAll calls fn over every entry in key order.
func (t *Tree) AscendAll(fn func(key uint64, val []byte) bool) {
	t.Ascend(0, ^uint64(0), fn)
}

// Min returns the smallest key, or ok=false when the tree is empty.
func (t *Tree) Min() (uint64, bool) {
	n := t.root
	for !n.isLeaf() {
		n = n.(*interior).children[0]
	}
	l := n.(*leaf)
	if len(l.keys) == 0 {
		return 0, false
	}
	return l.keys[0], true
}

// Max returns the largest key, or ok=false when the tree is empty.
func (t *Tree) Max() (uint64, bool) {
	n := t.root
	for !n.isLeaf() {
		in := n.(*interior)
		n = in.children[len(in.children)-1]
	}
	l := n.(*leaf)
	if len(l.keys) == 0 {
		return 0, false
	}
	return l.keys[len(l.keys)-1], true
}

// CheckInvariants verifies B+tree structural invariants, returning an error
// describing the first violation. Tests call it after mutation sequences.
func (t *Tree) CheckInvariants() error {
	_, _, _, err := check(t.root, true)
	if err != nil {
		return err
	}
	// Leaf chain must cover exactly size keys in ascending order.
	n := t.root
	for !n.isLeaf() {
		n = n.(*interior).children[0]
	}
	count := 0
	var prev uint64
	first := true
	for l := n.(*leaf); l != nil; l = l.next {
		for _, k := range l.keys {
			if !first && k <= prev {
				return fmt.Errorf("btree: leaf chain out of order at key %d", k)
			}
			prev, first = k, false
			count++
		}
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but leaf chain has %d keys", t.size, count)
	}
	return nil
}

// check validates a subtree, returning its depth and key range.
func check(n node, isRoot bool) (depth int, minK, maxK uint64, err error) {
	if l, ok := n.(*leaf); ok {
		if !isRoot && len(l.keys) < minLeafSz {
			return 0, 0, 0, fmt.Errorf("btree: leaf underflow (%d keys)", len(l.keys))
		}
		if len(l.keys) > maxLeaf {
			return 0, 0, 0, fmt.Errorf("btree: leaf overflow (%d keys)", len(l.keys))
		}
		for i := 1; i < len(l.keys); i++ {
			if l.keys[i-1] >= l.keys[i] {
				return 0, 0, 0, fmt.Errorf("btree: leaf keys out of order")
			}
		}
		if len(l.keys) == 0 {
			return 1, 0, 0, nil
		}
		return 1, l.keys[0], l.keys[len(l.keys)-1], nil
	}
	in := n.(*interior)
	if !isRoot && len(in.keys) < minKeys {
		return 0, 0, 0, fmt.Errorf("btree: interior underflow (%d keys)", len(in.keys))
	}
	if len(in.keys) > maxKeys {
		return 0, 0, 0, fmt.Errorf("btree: interior overflow (%d keys)", len(in.keys))
	}
	if len(in.children) != len(in.keys)+1 {
		return 0, 0, 0, fmt.Errorf("btree: %d keys with %d children", len(in.keys), len(in.children))
	}
	var d0 int
	for i, c := range in.children {
		d, mn, mx, err := check(c, false)
		if err != nil {
			return 0, 0, 0, err
		}
		if i == 0 {
			d0, minK = d, mn
		} else {
			if d != d0 {
				return 0, 0, 0, fmt.Errorf("btree: uneven depth")
			}
			if mn < in.keys[i-1] {
				return 0, 0, 0, fmt.Errorf("btree: child %d min %d below separator %d", i, mn, in.keys[i-1])
			}
		}
		if i == len(in.children)-1 {
			maxK = mx
		}
	}
	return d0 + 1, minK, maxK, nil
}
