package table

import (
	"apollo/internal/bits"
	"apollo/internal/colstore"
	"apollo/internal/sqltypes"
)

// Snapshot is a consistent read view of a table for the duration of a query:
// the compressed row groups that existed at snapshot time, per-group delete
// bitmaps frozen at snapshot time, and a materialized copy of the delta
// rows. Scans built on a snapshot are unaffected by concurrent DML and the
// tuple mover. A row group can appear while its source delta rows are also in
// the snapshot only if the mover published it after the snapshot was cut —
// impossible because the group list and delta list are read under one lock.
type Snapshot struct {
	Table   *Table
	Schema  *sqltypes.Schema
	Groups  []*colstore.RowGroup
	Deletes map[int]*bits.Bitmap // nil entry = no deletes in that group
	Delta   []sqltypes.Row       // live delta rows, materialized
}

// Snapshot captures a consistent view for a query. Materialized delta rows
// are cached across snapshots and invalidated by the table's delta epoch, so
// read-mostly workloads do not re-decode delta stores per query. Snapshot
// delta rows are shared and must be treated as read-only.
func (t *Table) Snapshot() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := &Snapshot{
		Table:   t,
		Schema:  t.Schema,
		Groups:  t.idx.Groups(),
		Deletes: make(map[int]*bits.Bitmap),
	}
	for _, g := range s.Groups {
		if bm := t.deletes.Snapshot(g.ID); bm != nil {
			s.Deletes[g.ID] = bm
		}
	}

	t.snapMu.Lock()
	if t.snapEpoch == t.deltaEpoch && t.snapValid {
		s.Delta = t.snapDelta
		t.snapMu.Unlock()
		return s
	}
	t.snapMu.Unlock()

	collect := func(st interface {
		Scan(func(uint64, sqltypes.Row) bool) error
	}) {
		st.Scan(func(_ uint64, row sqltypes.Row) bool {
			s.Delta = append(s.Delta, row)
			return true
		})
	}
	collect(t.open)
	for _, d := range t.closed {
		collect(d)
	}
	for _, d := range t.moving {
		collect(d)
	}

	t.snapMu.Lock()
	t.snapDelta = s.Delta
	t.snapEpoch = t.deltaEpoch
	t.snapValid = true
	t.snapMu.Unlock()
	return s
}

// OpenColumn opens a column reader for one of the snapshot's groups.
func (s *Snapshot) OpenColumn(g *colstore.RowGroup, col int) (*colstore.ColumnReader, error) {
	return s.Table.idx.OpenColumn(g, col)
}

// Rows returns the snapshot's live row count.
func (s *Snapshot) Rows() int {
	n := len(s.Delta)
	for _, g := range s.Groups {
		n += g.Rows
		if bm := s.Deletes[g.ID]; bm != nil {
			n -= bm.Count()
		}
	}
	return n
}
