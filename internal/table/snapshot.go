package table

import (
	"apollo/internal/bits"
	"apollo/internal/colstore"
	"apollo/internal/delta"
	"apollo/internal/sqltypes"
)

// Snapshot is a consistent read view of a table for the duration of a query:
// the compressed row groups that existed at snapshot time, per-group delete
// bitmaps frozen at snapshot time, and a materialized copy of the delta
// rows. Scans built on a snapshot are unaffected by concurrent DML and the
// tuple mover. A row group can appear while its source delta rows are also in
// the snapshot only if the mover published it after the snapshot was cut —
// impossible because the group list and delta list are read under one lock.
type Snapshot struct {
	Table   *Table
	Schema  *sqltypes.Schema
	AsOf    uint64 // resolved commit timestamp the snapshot reads at
	Groups  []*colstore.RowGroup
	Deletes map[int]*bits.Bitmap // nil entry = no deletes in that group
	Delta   []sqltypes.Row       // live delta rows, materialized
}

// Snapshot captures a consistent view of the latest committed state.
func (t *Table) Snapshot() *Snapshot {
	return t.SnapshotView(ReadView{})
}

// SnapshotView captures a consistent view as seen by view: the snapshot at
// view.AsOf (zero = latest committed) including view.Self's own uncommitted
// writes. Materialized delta rows are cached across snapshots and invalidated
// by the table's delta epoch, so read-mostly workloads do not re-decode delta
// stores per query; when every store is settled the cache is view-independent
// (all views see the same rows). Snapshot delta rows are shared and must be
// treated as read-only.
func (t *Table) SnapshotView(view ReadView) *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	asOf := view.AsOf
	if asOf == 0 {
		asOf = t.stableTSLocked()
	}
	s := &Snapshot{
		Table:   t,
		Schema:  t.Schema,
		AsOf:    asOf,
		Groups:  t.idx.Groups(),
		Deletes: make(map[int]*bits.Bitmap),
	}
	for _, g := range s.Groups {
		if bm := t.deletes.SnapshotView(g.ID, asOf, view.Self); bm != nil {
			s.Deletes[g.ID] = bm
		}
	}

	t.snapMu.Lock()
	if t.snapValid && t.snapEpoch == t.deltaEpoch &&
		(t.snapAnyView || (t.snapAsOf == asOf && t.snapSelf == view.Self)) {
		s.Delta = t.snapDelta
		t.snapMu.Unlock()
		return s
	}
	t.snapMu.Unlock()

	anyView := !t.anyDeltaUnsettledLocked()
	collect := func(st *delta.Store) {
		st.ScanVisible(asOf, view.Self, func(_ uint64, row sqltypes.Row) bool {
			s.Delta = append(s.Delta, row)
			return true
		})
	}
	collect(t.open)
	for _, d := range t.closed {
		collect(d)
	}
	for _, d := range t.moving {
		collect(d)
	}

	t.snapMu.Lock()
	t.snapDelta = s.Delta
	t.snapEpoch = t.deltaEpoch
	t.snapAsOf = asOf
	t.snapSelf = view.Self
	t.snapAnyView = anyView
	t.snapValid = true
	t.snapMu.Unlock()
	return s
}

// OpenColumn opens a column reader for one of the snapshot's groups.
func (s *Snapshot) OpenColumn(g *colstore.RowGroup, col int) (*colstore.ColumnReader, error) {
	return s.Table.idx.OpenColumn(g, col)
}

// Rows returns the snapshot's live row count.
func (s *Snapshot) Rows() int {
	n := len(s.Delta)
	for _, g := range s.Groups {
		n += g.Rows
		if bm := s.Deletes[g.ID]; bm != nil {
			n -= bm.Count()
		}
	}
	return n
}
