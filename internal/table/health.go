package table

import (
	"sync"
	"time"
)

// Tuple-mover retry backoff bounds. After a MoveOnce failure the background
// mover waits the current backoff before retrying, doubling up to the cap;
// one success resets it. The base is small because most failures are
// transient storage hiccups that clear immediately.
const (
	moverBaseBackoff = 5 * time.Millisecond
	moverMaxBackoff  = time.Second
)

// Health is a point-in-time snapshot of a table's tuple-mover health,
// exposed through Table.Health for monitoring and tests. A table with
// ConsecutiveFailures > 0 has closed delta stores it cannot currently
// compress; the mover keeps retrying with exponential backoff and the rows
// stay queryable from the delta store in the meantime, so the condition is
// degraded, not lossy.
type Health struct {
	MoverRunning        bool          // background tuple mover is active
	Moves               int64         // delta stores successfully compressed
	Failures            int64         // total MoveOnce errors observed
	ConsecutiveFailures int           // failures since the last success
	LastError           error         // most recent MoveOnce error (nil if none)
	LastErrorTime       time.Time     // when LastError occurred
	Backoff             time.Duration // current retry backoff (0 when healthy)

	// Integrity-scrub degradation: blobs belonging to this table that the
	// scrubber confirmed corrupt on every copy and quarantined. Queries
	// touching a quarantined blob fail with a typed quarantine error rather
	// than serving wrong bytes; the rest of the table keeps serving.
	QuarantinedBlobs   int
	LastQuarantine     error // most recent quarantine cause (nil if none)
	LastQuarantineTime time.Time
}

// moverHealth accumulates MoveOnce outcomes. Every MoveOnce call reports
// here — including foreground MoveAll/FlushOpen callers — so Health reflects
// the table's compression pipeline no matter who drives it.
type moverHealth struct {
	mu          sync.Mutex
	moves       int64
	failures    int64
	consecutive int
	lastErr     error
	lastErrTime time.Time
	backoff     time.Duration

	quarantined  map[uint64]struct{} // blob ids quarantined by the scrubber
	lastQuar     error
	lastQuarTime time.Time

	// obs, when set, sees every MoveOnce failure. The DB wires it to the
	// degrade state so a mover hitting ENOSPC or a poisoned WAL flips the
	// DB read-only / fail-stopped even though no session is on the path.
	obs func(error)
}

func (h *moverHealth) recordSuccess() {
	h.mu.Lock()
	h.moves++
	h.consecutive = 0
	h.backoff = 0
	h.mu.Unlock()
	mMoverMoves.Inc()
	mMoverBackoff.Set(0)
	mMoverConsecFailures.Set(0)
}

// recordFailure notes one MoveOnce error and returns the backoff the caller
// should wait before retrying.
func (h *moverHealth) recordFailure(err error) time.Duration {
	h.mu.Lock()
	h.failures++
	h.consecutive++
	h.lastErr = err
	h.lastErrTime = time.Now()
	switch {
	case h.backoff == 0:
		h.backoff = moverBaseBackoff
	case h.backoff < moverMaxBackoff:
		h.backoff *= 2
		if h.backoff > moverMaxBackoff {
			h.backoff = moverMaxBackoff
		}
	}
	d := h.backoff
	consec := h.consecutive
	obs := h.obs
	h.mu.Unlock()
	mMoverFailures.Inc()
	mMoverBackoff.Set(d.Seconds())
	mMoverConsecFailures.Set(float64(consec))
	if obs != nil {
		obs(err)
	}
	return d
}

func (h *moverHealth) snapshot(running bool) Health {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Health{
		MoverRunning:        running,
		Moves:               h.moves,
		Failures:            h.failures,
		ConsecutiveFailures: h.consecutive,
		LastError:           h.lastErr,
		LastErrorTime:       h.lastErrTime,
		Backoff:             h.backoff,
		QuarantinedBlobs:    len(h.quarantined),
		LastQuarantine:      h.lastQuar,
		LastQuarantineTime:  h.lastQuarTime,
	}
}

// Health returns a snapshot of the table's tuple-mover health.
func (t *Table) Health() Health {
	t.mu.RLock()
	running := t.mover != nil
	t.mu.RUnlock()
	return t.health.snapshot(running)
}

// SetFailureObserver installs fn to see every MoveOnce failure (called
// outside the health lock). The DB routes these into its degrade state.
func (t *Table) SetFailureObserver(fn func(error)) {
	t.health.mu.Lock()
	t.health.obs = fn
	t.health.mu.Unlock()
}

// NoteQuarantine records that one of this table's blobs was quarantined by
// the integrity scrubber. Idempotent per blob id.
func (t *Table) NoteQuarantine(blob uint64, cause error) {
	h := &t.health
	h.mu.Lock()
	if h.quarantined == nil {
		h.quarantined = make(map[uint64]struct{})
	}
	h.quarantined[blob] = struct{}{}
	h.lastQuar = cause
	h.lastQuarTime = time.Now()
	h.mu.Unlock()
}
