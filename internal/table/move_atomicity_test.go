package table

import (
	"testing"

	"apollo/internal/colstore"
	"apollo/internal/storage"
	"apollo/internal/wal"
)

// TestMovePublishCarriesPendingDeletes: a delete acknowledged while the tuple
// mover compresses its store must survive replay of any log prefix that
// contains the publish record. The publish and its pending deletes have to be
// ONE atomic append — logging delete-bitmap records separately after the
// publish leaves a crash window where the publish is durable but the deletes
// are not, and recovery resurrects an acknowledged delete.
func TestMovePublishCarriesPendingDeletes(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Create(dir, 1, wal.Options{Policy: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{RowGroupSize: 8, BulkLoadThreshold: 1 << 20, Columnstore: DefaultOptions().Columnstore}
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	src := New(store, "p", testSchema(), opts)
	src.SetWAL(w)

	var locs []Locator
	for i := int64(1); i <= 8; i++ { // 8th insert closes the store
		loc, err := src.Insert(mkRow(i))
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	// Delete id 3 while the mover has the store in Moving: the row is already
	// compressed into the pending group, so the delete lands in the store's
	// delete buffer and must ride inside the publish record.
	src.moverTestHookAfterBuild = func() {
		if !src.DeleteAt(locs[2]) {
			t.Error("mid-move delete failed")
		}
	}
	moved, err := src.MoveOnce()
	if err != nil || !moved {
		t.Fatalf("MoveOnce: moved=%v err=%v", moved, err)
	}
	src.moverTestHookAfterBuild = nil
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []*wal.Record
	if _, err := wal.Scan(dir, 1, false, func(_ uint64, rec *wal.Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pubIdx := -1
	for i, r := range recs {
		if r.Type == wal.TGroupPublish {
			pubIdx = i
		}
	}
	if pubIdx < 0 {
		t.Fatal("no publish record in log")
	}
	p, err := colstore.UnmarshalPublish(recs[pubIdx].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Deletes) != 1 {
		t.Fatalf("publish record carries %d pending deletes, want 1", len(p.Deletes))
	}

	// Replay exactly the prefix ending at the publish record — the state a
	// crash immediately after the publish fsync recovers to.
	dst := New(store, "p", testSchema(), opts)
	for _, r := range recs[:pubIdx+1] {
		if err := dst.ReplayRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	dst.FinishRecovery()
	occ := snapshotOccurrences(t, dst.Snapshot())
	for i := int64(1); i <= 8; i++ {
		want := 1
		if i == 3 {
			want = 0
		}
		if occ[i] != want {
			t.Fatalf("after publish-prefix replay: id %d visible %d times, want %d", i, occ[i], want)
		}
	}
}
