package table

import "apollo/internal/metrics"

// Tuple-mover series. Counters accumulate across every table in the process;
// the gauges reflect the most recent health transition of whichever mover
// reported last (per-table numbers come from Table.Health()).
var (
	mMoverMoves = metrics.Default.Counter("apollo_mover_moves_total",
		"delta stores successfully compressed into row groups")
	mMoverFailures = metrics.Default.Counter("apollo_mover_failures_total",
		"MoveOnce errors observed")
	mMoverAborts = metrics.Default.Counter("apollo_mover_aborts_total",
		"compressions aborted and rolled back (store re-queued)")
	mMoverBackoff = metrics.Default.Gauge("apollo_mover_backoff_seconds",
		"current tuple-mover retry backoff (0 when healthy)")
	mMoverConsecFailures = metrics.Default.Gauge("apollo_mover_consecutive_failures",
		"failures since the last successful move")
)
