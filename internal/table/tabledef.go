package table

import (
	"encoding/binary"
	"fmt"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

// Table-definition codec: the payload of create-table WAL records and the
// catalog section of checkpoint images. Covers everything needed to
// reconstruct an empty table identically — schema plus the options that
// affect on-disk layout.

// EncodeTableDef serializes a schema and options.
func EncodeTableDef(schema *sqltypes.Schema, opts Options) []byte {
	dst := binary.AppendUvarint(nil, uint64(schema.Len()))
	for _, c := range schema.Cols {
		dst = binary.AppendUvarint(dst, uint64(len(c.Name)))
		dst = append(dst, c.Name...)
		flags := byte(0)
		if c.Nullable {
			flags = 1
		}
		dst = append(dst, byte(c.Typ), flags)
	}
	dst = binary.AppendUvarint(dst, uint64(opts.RowGroupSize))
	dst = binary.AppendUvarint(dst, uint64(opts.BulkLoadThreshold))
	cflags := byte(0)
	if opts.Columnstore.Reorder {
		cflags |= 1
	}
	dst = append(dst, byte(opts.Columnstore.Tier), cflags)
	dst = binary.AppendUvarint(dst, uint64(opts.Columnstore.PrimaryDictCap))
	return dst
}

// DecodeTableDef reverses EncodeTableDef.
func DecodeTableDef(buf []byte) (*sqltypes.Schema, Options, error) {
	var opts Options
	pos := 0
	ncols, n := binary.Uvarint(buf[pos:])
	if n <= 0 || ncols > 1<<16 {
		return nil, opts, fmt.Errorf("table: bad column count in table def")
	}
	pos += n
	cols := make([]sqltypes.Column, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		l, n := binary.Uvarint(buf[pos:])
		if n <= 0 || l > uint64(len(buf)-pos-n) {
			return nil, opts, fmt.Errorf("table: bad column name in table def")
		}
		pos += n
		name := string(buf[pos : pos+int(l)])
		pos += int(l)
		if pos+2 > len(buf) {
			return nil, opts, fmt.Errorf("table: truncated table def")
		}
		cols = append(cols, sqltypes.Column{Name: name, Typ: sqltypes.Type(buf[pos]), Nullable: buf[pos+1]&1 != 0})
		pos += 2
	}
	rgs, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, opts, fmt.Errorf("table: truncated table def")
	}
	pos += n
	blt, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, opts, fmt.Errorf("table: truncated table def")
	}
	pos += n
	if pos+2 > len(buf) {
		return nil, opts, fmt.Errorf("table: truncated table def")
	}
	opts.RowGroupSize = int(rgs)
	opts.BulkLoadThreshold = int(blt)
	opts.Columnstore.Tier = storage.Compression(buf[pos])
	opts.Columnstore.Reorder = buf[pos+1]&1 != 0
	pos += 2
	cap64, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, opts, fmt.Errorf("table: truncated table def")
	}
	pos += n
	opts.Columnstore.PrimaryDictCap = int(cap64)
	if pos != len(buf) {
		return nil, opts, fmt.Errorf("table: %d trailing bytes in table def", len(buf)-pos)
	}
	return sqltypes.NewSchema(cols...), opts, nil
}
