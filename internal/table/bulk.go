package table

import (
	"context"

	"apollo/internal/sqltypes"
	"apollo/internal/wal"
)

// CompressDirect compresses rows straight into published row groups,
// bypassing the delta store entirely: one group per RowGroupSize chunk, the
// trailing remainder as a smaller final group regardless of the bulk
// threshold (the caller — the load pipeline — decides the direct-vs-delta
// split per batch). Each group is one atomic TGroupPublish WAL append whose
// segment blobs are already durable, so recovery replays whole groups or
// none; a crash mid-publish truncates the torn record and the group is
// simply absent. Returns the number of groups published.
func (t *Table) CompressDirect(rows []sqltypes.Row) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	for _, r := range rows {
		if err := t.checkRow(r); err != nil {
			return 0, err
		}
	}
	coerced := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		coerced[i] = t.coerceRow(r)
	}
	groups := 0
	for i := 0; i < len(coerced); i += t.Opts.RowGroupSize {
		end := i + t.Opts.RowGroupSize
		if end > len(coerced) {
			end = len(coerced)
		}
		if err := t.compressRows(coerced[i:end]); err != nil {
			return groups, err
		}
		groups++
	}
	return groups, nil
}

// InsertBatch trickle-inserts rows as one batch (the bulk loader's
// below-threshold fallback): every row lands in the open delta store under
// a single lock hold, the per-row WAL records are appended without
// per-record fsyncs, and one durability wait at the end covers the whole
// batch — so an fsync=always load pays one group-commit per batch instead
// of one per row. Durability semantics match Insert: under fsync=always the
// call returns only after the batch is on disk; under interval/off the wait
// is skipped, exactly as Append would. ctx bounds only the final durability
// wait — on cancellation the rows are already applied and ride the next
// sync; only the confirmation is abandoned.
func (t *Table) InsertBatch(ctx context.Context, rows []sqltypes.Row) error {
	if len(rows) == 0 {
		return nil
	}
	for _, r := range rows {
		if err := t.checkRow(r); err != nil {
			return err
		}
	}
	coerced := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		coerced[i] = t.coerceRow(r)
	}

	t.mu.Lock()
	wc := t.writeCtxLocked(TxnRef{})
	var target int64
	closedAny := false
	var err error
	for _, row := range coerced {
		enc := sqltypes.EncodeRow(nil, t.Schema, row)
		key := t.open.NextKey()
		if t.wal != nil {
			rec := &wal.Record{Type: wal.TDeltaInsert, A: uint64(t.open.ID), B: key, Payload: enc, Table: t.Name}
			if target, err = t.wal.AppendAsync(rec); err != nil {
				break
			}
		}
		if _, err = t.open.InsertEncodedAt(enc, wc.ts); err != nil {
			break
		}
		t.deltaEpoch++
		if t.open.Rows() >= t.Opts.RowGroupSize {
			// The close transition is a synchronous append (it gates replay
			// of everything after it); it only fires every RowGroupSize rows.
			if err = t.closeOpenLocked(); err != nil {
				break
			}
			closedAny = true
		}
	}
	t.finishWrite(wc)
	t.mu.Unlock()
	if closedAny {
		t.kickMover()
	}
	if err != nil {
		return err
	}
	if t.wal != nil && target > 0 && t.wal.Policy() == wal.FsyncAlways {
		return t.wal.WaitDurable(ctx, target)
	}
	return nil
}
