package table

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"apollo/internal/colstore"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "id", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "val", Typ: sqltypes.String},
	)
}

func smallOpts() Options {
	return Options{
		RowGroupSize:      100,
		BulkLoadThreshold: 20,
		Columnstore:       DefaultOptions().Columnstore,
	}
}

func newTable(t *testing.T) *Table {
	t.Helper()
	return New(storage.NewStore(storage.DefaultBufferPoolBytes), "t", testSchema(), smallOpts())
}

func mkRow(i int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewString(fmt.Sprintf("v%d", i%7))}
}

func mkRows(n int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = mkRow(int64(i))
	}
	return rows
}

// collect reads all live rows via a snapshot.
func collect(t *testing.T, tb *Table) map[int64]int {
	t.Helper()
	snap := tb.Snapshot()
	out := map[int64]int{}
	for _, g := range snap.Groups {
		del := snap.Deletes[g.ID]
		r, err := snap.OpenColumn(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Rows; i++ {
			if del != nil && del.Get(i) {
				continue
			}
			out[r.Value(i).I]++
		}
	}
	for _, row := range snap.Delta {
		out[row[0].I]++
	}
	return out
}

func TestTrickleInsertAndRowCount(t *testing.T) {
	tb := newTable(t)
	for i := 0; i < 50; i++ {
		if _, err := tb.Insert(mkRow(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Rows() != 50 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	st := tb.Stat()
	if st.CompressedRows != 0 || st.DeltaRows != 50 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeltaStoreClosesAtRowGroupSize(t *testing.T) {
	tb := newTable(t)
	for i := 0; i < 250; i++ {
		tb.Insert(mkRow(int64(i)))
	}
	tb.mu.RLock()
	closed := len(tb.closed)
	tb.mu.RUnlock()
	if closed != 2 {
		t.Fatalf("closed stores = %d, want 2", closed)
	}
}

func TestTupleMoverCompressesClosedStores(t *testing.T) {
	tb := newTable(t)
	for i := 0; i < 250; i++ {
		tb.Insert(mkRow(int64(i)))
	}
	if err := tb.MoveAll(); err != nil {
		t.Fatal(err)
	}
	st := tb.Stat()
	if st.CompressedGroups != 2 || st.CompressedRows != 200 || st.DeltaRows != 50 {
		t.Fatalf("stats after move: %+v", st)
	}
	got := collect(t, tb)
	for i := int64(0); i < 250; i++ {
		if got[i] != 1 {
			t.Fatalf("row %d count = %d", i, got[i])
		}
	}
}

func TestBulkLoadPaths(t *testing.T) {
	tb := newTable(t)
	// 250 rows: two full groups of 100, remainder 50 >= threshold 20 -> third group.
	if err := tb.BulkLoad(mkRows(250)); err != nil {
		t.Fatal(err)
	}
	st := tb.Stat()
	if st.CompressedGroups != 3 || st.CompressedRows != 250 || st.DeltaRows != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// 10 more rows: below threshold -> delta store.
	if err := tb.BulkLoad(mkRows(10)); err != nil {
		t.Fatal(err)
	}
	st = tb.Stat()
	if st.CompressedGroups != 3 || st.DeltaRows != 10 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeleteWhereAcrossStores(t *testing.T) {
	tb := newTable(t)
	tb.BulkLoad(mkRows(100)) // compressed group
	for i := 100; i < 150; i++ {
		tb.Insert(mkRow(int64(i))) // delta rows
	}
	n, err := tb.DeleteWhere(func(r sqltypes.Row) bool { return r[0].I%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 75 {
		t.Fatalf("deleted %d, want 75", n)
	}
	if tb.Rows() != 75 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	got := collect(t, tb)
	for i := int64(0); i < 150; i++ {
		want := 0
		if i%2 == 1 {
			want = 1
		}
		if got[i] != want {
			t.Fatalf("row %d count = %d, want %d", i, got[i], want)
		}
	}
}

func TestUpdateWhereIsDeletePlusInsert(t *testing.T) {
	tb := newTable(t)
	tb.BulkLoad(mkRows(100))
	n, err := tb.UpdateWhere(
		func(r sqltypes.Row) bool { return r[0].I < 10 },
		func(r sqltypes.Row) sqltypes.Row {
			r[1] = sqltypes.NewString("updated")
			return r
		},
	)
	if err != nil || n != 10 {
		t.Fatalf("updated %d, err %v", n, err)
	}
	if tb.Rows() != 100 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	st := tb.Stat()
	// Updated rows land in the delta store; originals are delete-bitmapped.
	if st.DeltaRows != 10 || st.DeletedRows != 10 {
		t.Fatalf("stats: %+v", st)
	}
	snap := tb.Snapshot()
	count := 0
	for _, row := range snap.Delta {
		if row[1].S == "updated" {
			count++
		}
	}
	if count != 10 {
		t.Fatalf("updated rows in delta = %d", count)
	}
}

func TestFetchRowBookmarks(t *testing.T) {
	tb := newTable(t)
	loc, err := tb.Insert(mkRow(42))
	if err != nil {
		t.Fatal(err)
	}
	row, ok := tb.FetchRow(loc)
	if !ok || row[0].I != 42 {
		t.Fatalf("FetchRow = %v, %v", row, ok)
	}
	// Compressed bookmark.
	tb.BulkLoad(mkRows(100))
	g := tb.Index().Groups()[0]
	cloc := Locator{Group: g.ID, Tuple: 5}
	if _, ok := tb.FetchRow(cloc); !ok {
		t.Fatal("compressed FetchRow failed")
	}
	// Delete then fetch.
	if !tb.DeleteAt(cloc) {
		t.Fatal("DeleteAt failed")
	}
	if _, ok := tb.FetchRow(cloc); ok {
		t.Fatal("deleted row fetched")
	}
	// Stale/invalid locators.
	if _, ok := tb.FetchRow(Locator{Group: 999, Tuple: 0}); ok {
		t.Fatal("phantom group fetched")
	}
	if _, ok := tb.FetchRow(Locator{Group: g.ID, Tuple: 1 << 20}); ok {
		t.Fatal("out-of-range tuple fetched")
	}
}

func TestMoveOnceReplaysDeleteBuffer(t *testing.T) {
	// Deterministically exercise the Moving-state delete buffer: begin a
	// move, delete rows from the moving store, then finish via MoveOnce's
	// internals — done here by pausing between BeginMove and completion
	// using the package internals.
	tb := newTable(t)
	var locs []Locator
	for i := 0; i < 100; i++ {
		loc, _ := tb.Insert(mkRow(int64(i)))
		locs = append(locs, loc)
	}
	// Store closed automatically at 100 rows.
	tb.mu.RLock()
	nclosed := len(tb.closed)
	tb.mu.RUnlock()
	if nclosed != 1 {
		t.Fatalf("closed = %d", nclosed)
	}

	// Run MoveOnce on a goroutine but intercept by deleting concurrently.
	// To keep the test deterministic we instead simulate: BeginMove, delete,
	// then hand-complete through the public API pieces.
	tb.mu.Lock()
	s := tb.closed[0]
	tb.closed = tb.closed[1:]
	keys, rows, err := s.BeginMove()
	if err != nil {
		t.Fatal(err)
	}
	tb.moving[s.ID] = s
	tb.mu.Unlock()

	// Delete two rows while the store is Moving — they are gone from the
	// B-tree and recorded in the delete buffer.
	if !tb.DeleteAt(locs[3]) || !tb.DeleteAt(locs[97]) {
		t.Fatal("delete during move failed")
	}

	// Complete the move the same way MoveOnce does.
	bufs := colstore.BuffersFromRows(tb.Schema, rows)
	g, perm, err := tb.idx.BuildRowGroup(bufs)
	if err != nil {
		t.Fatal(err)
	}
	inv := make([]int, len(rows))
	if perm == nil {
		for i := range inv {
			inv[i] = i
		}
	} else {
		for np, op := range perm {
			inv[op] = np
		}
	}
	tb.mu.Lock()
	tb.idx.PublishGroup(g)
	for _, bd := range s.DrainDeleteBuffer() {
		for i, kk := range keys {
			if kk == bd.Key {
				tb.deletes.Delete(g.ID, inv[i])
			}
		}
	}
	delete(tb.moving, s.ID)
	tb.mu.Unlock()

	if tb.Rows() != 98 {
		t.Fatalf("Rows = %d, want 98", tb.Rows())
	}
	got := collect(t, tb)
	if got[3] != 0 || got[97] != 0 || got[4] != 1 {
		t.Fatalf("delete buffer replay wrong: %v %v %v", got[3], got[97], got[4])
	}
}

func TestBackgroundTupleMover(t *testing.T) {
	tb := newTable(t)
	tb.StartTupleMover(5 * time.Millisecond)
	defer tb.StopTupleMover()
	for i := 0; i < 500; i++ {
		tb.Insert(mkRow(int64(i)))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := tb.Stat()
		if st.CompressedRows == 500 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := tb.Stat()
	if st.CompressedRows != 500 {
		t.Fatalf("mover did not drain: %+v", st)
	}
	if tb.Rows() != 500 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestConcurrentInsertQueryMove(t *testing.T) {
	tb := newTable(t)
	tb.StartTupleMover(time.Millisecond)
	defer tb.StopTupleMover()

	const writers = 4
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := tb.Insert(mkRow(int64(w*perWriter + i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers: snapshots must never see a row twice or crash.
	stopRead := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			snap := tb.Snapshot()
			seen := map[int64]bool{}
			ok := true
			for _, g := range snap.Groups {
				r, err := snap.OpenColumn(g, 0)
				if err != nil {
					t.Error(err)
					return
				}
				del := snap.Deletes[g.ID]
				for i := 0; i < g.Rows; i++ {
					if del != nil && del.Get(i) {
						continue
					}
					v := r.Value(i).I
					if seen[v] {
						t.Errorf("duplicate row %d in snapshot", v)
						ok = false
					}
					seen[v] = true
				}
			}
			for _, row := range snap.Delta {
				v := row[0].I
				if seen[v] {
					t.Errorf("row %d in both compressed and delta", v)
					ok = false
				}
				seen[v] = true
			}
			if !ok {
				return
			}
		}
	}()
	wg.Wait()
	close(stopRead)
	rg.Wait()

	if err := tb.FlushOpen(); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != writers*perWriter {
		t.Fatalf("Rows = %d, want %d", tb.Rows(), writers*perWriter)
	}
	got := collect(t, tb)
	if len(got) != writers*perWriter {
		t.Fatalf("distinct rows = %d", len(got))
	}
}

func TestSample(t *testing.T) {
	tb := newTable(t)
	tb.BulkLoad(mkRows(500))
	for i := 500; i < 600; i++ {
		tb.Insert(mkRow(int64(i)))
	}
	tb.DeleteWhere(func(r sqltypes.Row) bool { return r[0].I < 50 })

	rng := rand.New(rand.NewSource(7))
	sample := tb.Sample(200, rng)
	if len(sample) < 150 {
		t.Fatalf("sample too small: %d", len(sample))
	}
	sawDelta := false
	for _, r := range sample {
		if r[0].I < 50 {
			t.Fatalf("sampled deleted row %d", r[0].I)
		}
		if r[0].I >= 500 {
			sawDelta = true
		}
	}
	if !sawDelta {
		t.Fatal("sample never hit delta rows")
	}
	// Empty table.
	empty := newTable(t)
	if s := empty.Sample(10, rng); s != nil {
		t.Fatalf("sample of empty table = %v", s)
	}
}

func TestRejectsBadRows(t *testing.T) {
	tb := newTable(t)
	if _, err := tb.Insert(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := tb.Insert(sqltypes.Row{sqltypes.NewNull(sqltypes.Int64), sqltypes.NewString("x")}); err == nil {
		t.Fatal("NULL in non-nullable column accepted")
	}
	if _, err := tb.Insert(sqltypes.Row{sqltypes.NewString("x"), sqltypes.NewString("x")}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestNumericCoercion(t *testing.T) {
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	schema := sqltypes.NewSchema(sqltypes.Column{Name: "f", Typ: sqltypes.Float64})
	tb := New(store, "t", schema, smallOpts())
	if _, err := tb.Insert(sqltypes.Row{sqltypes.NewInt(3)}); err != nil {
		t.Fatal(err)
	}
	snap := tb.Snapshot()
	if v := snap.Delta[0][0]; v.Typ != sqltypes.Float64 || v.F != 3.0 {
		t.Fatalf("coercion wrong: %#v", v)
	}
}

func TestMergeSmallGroups(t *testing.T) {
	tb := newTable(t) // RowGroupSize 100
	// Six undersized groups of 30 rows each via repeated small bulk loads.
	for g := 0; g < 6; g++ {
		rows := make([]sqltypes.Row, 30)
		for i := range rows {
			rows[i] = mkRow(int64(g*30 + i))
		}
		if err := tb.BulkLoad(rows); err != nil {
			t.Fatal(err)
		}
	}
	if st := tb.Stat(); st.CompressedGroups != 6 {
		t.Fatalf("precondition: groups = %d", st.CompressedGroups)
	}
	// Delete a few rows so merge also compacts ghosts.
	tb.DeleteWhere(func(r sqltypes.Row) bool { return r[0].I < 10 })

	merged, err := tb.MergeSmallGroups()
	if err != nil {
		t.Fatal(err)
	}
	if merged <= 0 {
		t.Fatalf("merged = %d", merged)
	}
	st := tb.Stat()
	if st.CompressedGroups != 2 { // 170 live rows -> 100 + 70
		t.Fatalf("groups after merge = %d (%+v)", st.CompressedGroups, st)
	}
	if st.DeletedRows != 0 {
		t.Fatalf("merge kept delete bitmap entries: %+v", st)
	}
	if tb.Rows() != 170 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	got := collect(t, tb)
	for i := int64(10); i < 180; i++ {
		if got[i] != 1 {
			t.Fatalf("row %d count = %d", i, got[i])
		}
	}
	// Merging again is a no-op when only one small group remains.
	if m2, err := tb.MergeSmallGroups(); err != nil || m2 != 0 {
		t.Fatalf("second merge = %d, %v", m2, err)
	}
}
