// Package table implements the paper's updatable clustered columnstore index
// (§4): a table whose base storage is a columnstore index, augmented with
// delta stores that absorb trickle inserts, a delete bitmap covering
// compressed row groups, and a tuple mover that compresses CLOSED delta
// stores into row groups in the background. Bulk loads above a threshold
// bypass delta stores and compress directly; updates are delete + insert.
package table

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"apollo/internal/colstore"
	"apollo/internal/delta"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/wal"
)

// Options configure a clustered columnstore table.
type Options struct {
	// RowGroupSize is the target rows per compressed row group (the paper
	// uses about one million). A delta store closes when it reaches this.
	RowGroupSize int
	// BulkLoadThreshold is the minimum batch size that compresses directly
	// instead of landing in a delta store (102,400 in the shipped system).
	BulkLoadThreshold int
	// Columnstore selects segment compression options (tier, reordering,
	// dictionary policy).
	Columnstore colstore.Options
}

// DefaultOptions mirrors the shipped system's constants.
func DefaultOptions() Options {
	return Options{
		RowGroupSize:      1 << 20,
		BulkLoadThreshold: 102400,
		Columnstore:       colstore.DefaultOptions(),
	}
}

// Locator is a bookmark (§4.4): a stable address of a row, either (row group,
// tuple id) for compressed rows or (delta store, key) for delta rows.
type Locator struct {
	InDelta bool
	Group   int    // compressed: row group id
	Tuple   int    // compressed: tuple id within the group
	DeltaID int    // delta: store id
	Key     uint64 // delta: tuple key
}

func (l Locator) String() string {
	if l.InDelta {
		return fmt.Sprintf("delta(%d,%d)", l.DeltaID, l.Key)
	}
	return fmt.Sprintf("rg(%d,%d)", l.Group, l.Tuple)
}

// Table is an updatable clustered columnstore table.
type Table struct {
	Name   string
	Schema *sqltypes.Schema
	Opts   Options

	mu      sync.RWMutex
	idx     *colstore.Index
	open    *delta.Store
	closed  []*delta.Store
	moving  map[int]*delta.Store
	deltaID int
	deletes *delta.DeleteBitmap

	// clock is the transaction manager's timestamp view (nil = no manager;
	// every write settles immediately). txnPending indexes the provisional
	// effects of each in-flight transaction for commit/abort/recovery.
	clock      Clock
	txnPending map[uint64][]intent

	// deltaEpoch increments on every mutation of delta-store contents; the
	// snapshot cache (snapshot.go) uses it to reuse materialized delta rows
	// across queries when nothing changed.
	//
	// statsVersion increments on every row-group publish (tuple mover, bulk
	// load, rebuild, merge). Publishes can shift the data distribution without
	// a large row-count delta, so the statistics cache keys recollection on
	// this counter in addition to row drift.
	statsVersion uint64
	deltaEpoch   uint64
	snapMu      sync.Mutex
	snapDelta   []sqltypes.Row
	snapEpoch   uint64
	snapAsOf    uint64 // view the cached delta rows were materialized for
	snapSelf    uint64
	snapAnyView bool // cached rows valid for every view (all stores settled)
	snapValid   bool

	// compressMu serializes row-group compression (tuple mover vs bulk load)
	// so the shared primary dictionaries see a single writer. Paths that hold
	// both locks take compressMu BEFORE t.mu; keeping builds and their
	// publish records under one compressMu hold also makes WAL publish order
	// equal build order, which dictionary-append replay depends on.
	compressMu sync.Mutex

	// wal, when set, receives a record for every durable mutation. Records
	// are appended inside the same t.mu critical section that applies the
	// change, so per-table log order equals apply order.
	wal *wal.Writer

	mover  *mover
	health moverHealth

	// moverTestHookAfterBuild, when set, runs in MoveOnce after the row group
	// is built but before it is published — the window where the source store
	// is Moving and concurrent deletes land in its delete buffer. Tests use it
	// to exercise the publish-with-pending-deletes path deterministically.
	moverTestHookAfterBuild func()
}

// New creates an empty clustered columnstore table.
func New(store *storage.Store, name string, schema *sqltypes.Schema, opts Options) *Table {
	if opts.RowGroupSize <= 0 {
		opts.RowGroupSize = DefaultOptions().RowGroupSize
	}
	if opts.BulkLoadThreshold <= 0 {
		opts.BulkLoadThreshold = DefaultOptions().BulkLoadThreshold
	}
	t := &Table{
		Name:    name,
		Schema:  schema,
		Opts:    opts,
		idx:     colstore.NewIndex(store, schema, opts.Columnstore),
		deletes: delta.NewDeleteBitmap(),
		moving:  make(map[int]*delta.Store),
	}
	t.open = t.newDeltaStoreLocked()
	return t
}

// SetWAL attaches a write-ahead log; subsequent mutations are logged.
// Attach before any DML (normally right after New or recovery).
func (t *Table) SetWAL(w *wal.Writer) { t.wal = w }

// logWAL appends a record for this table. A nil writer (non-durable table)
// is a no-op.
func (t *Table) logWAL(rec *wal.Record) error {
	if t.wal == nil {
		return nil
	}
	rec.Table = t.Name
	return t.wal.Append(rec)
}

// logTxnWAL appends a record tagged with a transaction id. Transactional
// records skip the per-record fsync: the transaction is committed only by
// its TCommit record, whose durability wait covers the whole log prefix.
// txn zero falls back to the autocommit path.
func (t *Table) logTxnWAL(rec *wal.Record, txn uint64) error {
	if t.wal == nil {
		return nil
	}
	rec.Table = t.Name
	rec.Txn = txn
	if txn != 0 {
		_, err := t.wal.AppendAsync(rec)
		return err
	}
	return t.wal.Append(rec)
}

// Index exposes the compressed columnstore index (read-only use).
func (t *Table) Index() *colstore.Index { return t.idx }

// Deletes exposes the delete bitmap (read-only use).
func (t *Table) Deletes() *delta.DeleteBitmap { return t.deletes }

func (t *Table) newDeltaStoreLocked() *delta.Store {
	t.deltaID++
	return delta.NewStore(t.deltaID, t.Schema)
}

func (t *Table) checkRow(row sqltypes.Row) error {
	if len(row) != t.Schema.Len() {
		return fmt.Errorf("table %s: row width %d, want %d", t.Name, len(row), t.Schema.Len())
	}
	for i, col := range t.Schema.Cols {
		v := row[i]
		if v.Null {
			if !col.Nullable {
				return fmt.Errorf("table %s: NULL in non-nullable column %s", t.Name, col.Name)
			}
			continue
		}
		want := col.Typ
		got := v.Typ
		if got != want && !(want.Numeric() && got.Numeric()) {
			return fmt.Errorf("table %s: column %s expects %v, got %v", t.Name, col.Name, want, got)
		}
	}
	return nil
}

// coerceRow normalizes numeric types to the column types.
func (t *Table) coerceRow(row sqltypes.Row) sqltypes.Row {
	out := row.Clone()
	for i, col := range t.Schema.Cols {
		v := out[i]
		if v.Null {
			out[i] = sqltypes.NewNull(col.Typ)
			continue
		}
		switch {
		case col.Typ == sqltypes.Float64 && v.Typ == sqltypes.Int64:
			out[i] = sqltypes.NewFloat(float64(v.I))
		case col.Typ == sqltypes.Int64 && v.Typ == sqltypes.Float64:
			out[i] = sqltypes.NewInt(int64(v.F))
		default:
			out[i].Typ = col.Typ
		}
	}
	return out
}

// Insert trickle-inserts one row into the open delta store (§4.2). When the
// open store reaches RowGroupSize it is closed and a new one opened; the
// tuple mover picks up closed stores.
func (t *Table) Insert(row sqltypes.Row) (Locator, error) {
	return t.InsertTxn(TxnRef{}, row)
}

// InsertTxn trickle-inserts one row on behalf of tx (the zero TxnRef means
// autocommit). A transactional insert is provisional — invisible to other
// sessions until the transaction commits.
func (t *Table) InsertTxn(tx TxnRef, row sqltypes.Row) (Locator, error) {
	if err := t.checkRow(row); err != nil {
		return Locator{}, err
	}
	row = t.coerceRow(row)
	t.mu.Lock()
	wc := t.writeCtxLocked(tx)
	loc, closedNow, err := t.insertOpenLocked(row, wc)
	t.finishWrite(wc)
	t.mu.Unlock()
	if err != nil {
		return Locator{}, err
	}
	if closedNow {
		t.kickMover()
	}
	return loc, nil
}

// insertOpenLocked logs and applies one insert into the open delta store,
// closing it (with a logged transition) when it reaches RowGroupSize. The
// record goes first: the key is known before the insert (keys are assigned
// monotonically), and on append failure nothing has been applied.
func (t *Table) insertOpenLocked(row sqltypes.Row, wc writeCtx) (Locator, bool, error) {
	enc := sqltypes.EncodeRow(nil, t.Schema, row)
	key := t.open.NextKey()
	if err := t.logTxnWAL(&wal.Record{Type: wal.TDeltaInsert, A: uint64(t.open.ID), B: key, Payload: enc}, wc.self); err != nil {
		return Locator{}, false, err
	}
	if _, err := t.open.InsertEncodedAt(enc, wc.ts); err != nil {
		return Locator{}, false, err
	}
	if wc.self != 0 {
		t.addIntentLocked(wc.self, intent{kind: intentInsert, deltaID: t.open.ID, key: key})
	}
	t.deltaEpoch++
	loc := Locator{InDelta: true, DeltaID: t.open.ID, Key: key}
	if t.open.Rows() >= t.Opts.RowGroupSize {
		if err := t.closeOpenLocked(); err != nil {
			return loc, false, err
		}
		return loc, true, nil
	}
	return loc, false, nil
}

// closeOpenLocked logs and applies the open-store transition: the current
// open store becomes CLOSED (mover input) and a fresh open store is created.
func (t *Table) closeOpenLocked() error {
	old := t.open
	if err := t.logWAL(&wal.Record{Type: wal.TDeltaClose, A: uint64(old.ID), B: uint64(t.deltaID + 1)}); err != nil {
		return err
	}
	old.Close()
	t.closed = append(t.closed, old)
	t.open = t.newDeltaStoreLocked()
	return nil
}

// InsertMany trickle-inserts rows one at a time (the non-bulk path).
func (t *Table) InsertMany(rows []sqltypes.Row) error {
	for _, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// BulkLoad loads rows through the bulk path (§4.2): full row groups compress
// directly; a trailing remainder at or above BulkLoadThreshold also
// compresses (as a smaller row group); a remainder below the threshold is
// trickle-inserted into the open delta store.
func (t *Table) BulkLoad(rows []sqltypes.Row) error {
	for _, r := range rows {
		if err := t.checkRow(r); err != nil {
			return err
		}
	}
	coerced := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		coerced[i] = t.coerceRow(r)
	}
	i := 0
	for len(coerced)-i >= t.Opts.RowGroupSize {
		if err := t.compressRows(coerced[i : i+t.Opts.RowGroupSize]); err != nil {
			return err
		}
		i += t.Opts.RowGroupSize
	}
	rem := coerced[i:]
	if len(rem) == 0 {
		return nil
	}
	if len(rem) >= t.Opts.BulkLoadThreshold {
		return t.compressRows(rem)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	wc := t.writeCtxLocked(TxnRef{})
	defer t.finishWrite(wc)
	for _, r := range rem {
		if _, _, err := t.insertOpenLocked(r, wc); err != nil {
			return err
		}
	}
	return nil
}

// compressRows builds one compressed row group directly from rows and
// publishes it (bulk-load path; no delta store is consumed).
func (t *Table) compressRows(rows []sqltypes.Row) error {
	t.compressMu.Lock()
	defer t.compressMu.Unlock()
	bufs := colstore.BuffersFromRows(t.Schema, rows)
	g, _, dicts, err := t.buildGroup(bufs)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.publishLocked(g, dicts, 0, nil)
}

// buildGroup builds (but does not publish) a row group, capturing the
// primary-dictionary entries the build appended so the publish WAL record can
// replay them. Caller holds compressMu.
func (t *Table) buildGroup(bufs []*colstore.ColumnBuf) (*colstore.RowGroup, []int, []colstore.DictAppend, error) {
	prev := make([]int, t.Schema.Len())
	for c := range t.Schema.Cols {
		if d := t.idx.Primary(c); d != nil {
			prev[c] = d.Len()
		}
	}
	g, perm, err := t.idx.BuildRowGroup(bufs)
	if err != nil {
		return nil, nil, nil, err
	}
	var dicts []colstore.DictAppend
	for c := range t.Schema.Cols {
		d := t.idx.Primary(c)
		if d == nil {
			continue
		}
		if cur := d.Len(); cur > prev[c] {
			vals := append([]string(nil), d.SnapshotValues()[prev[c]:cur]...)
			dicts = append(dicts, colstore.DictAppend{Col: c, Prev: prev[c], Vals: vals})
		}
	}
	return g, perm, dicts, nil
}

// publishLocked assigns the group the id it will carry in the directory,
// logs the publish (group metadata + dictionary appends; the segment blobs
// are already durable via the store's write-through backing), and installs
// it. consumed names the delta store the group replaces (0 = none). deletes
// lists tuple ids already deleted at publish time (deletes that landed while
// the mover compressed); they travel inside the publish record so publish and
// deletes are one atomic log append. Caller holds t.mu, and compressMu
// whenever another build could interleave.
func (t *Table) publishLocked(g *colstore.RowGroup, dicts []colstore.DictAppend, consumed int, deletes []int) error {
	g.ID = t.idx.NextGroupID()
	if t.wal != nil {
		payload := colstore.MarshalPublish(&colstore.Publish{Group: g, Dicts: dicts, Deletes: deletes})
		if err := t.logWAL(&wal.Record{Type: wal.TGroupPublish, A: uint64(consumed), Payload: payload}); err != nil {
			return err
		}
	}
	t.idx.RestoreGroup(g)
	for _, tid := range deletes {
		t.deletes.Delete(g.ID, tid)
	}
	t.statsVersion++
	return nil
}

// StatsVersion reports the table's publish epoch: it changes whenever a row
// group is published (tuple mover, bulk load, rebuild, merge). Statistics
// collected at one version are stale once the version moves.
func (t *Table) StatsVersion() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.statsVersion
}

// FetchRow resolves a bookmark to its row. Deleted or stale locators report
// ok=false.
func (t *Table) FetchRow(loc Locator) (sqltypes.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.fetchRowLocked(loc)
}

func (t *Table) fetchRowLocked(loc Locator) (sqltypes.Row, bool) {
	return t.fetchRowViewLocked(loc, t.stableTSLocked(), 0)
}

// fetchRowViewLocked resolves a bookmark as seen by a snapshot at asOf taken
// by self.
func (t *Table) fetchRowViewLocked(loc Locator, asOf, self uint64) (sqltypes.Row, bool) {
	if loc.InDelta {
		if s := t.deltaByIDLocked(loc.DeltaID); s != nil {
			if !s.Version(loc.Key).VisibleAt(asOf, self) {
				return nil, false
			}
			return s.Get(loc.Key)
		}
		return nil, false
	}
	if t.deletes.IsDeletedAt(loc.Group, loc.Tuple, asOf, self) {
		return nil, false
	}
	g := t.idx.Group(loc.Group)
	if g == nil || loc.Tuple < 0 || loc.Tuple >= g.Rows {
		return nil, false
	}
	row := make(sqltypes.Row, t.Schema.Len())
	for c := range t.Schema.Cols {
		r, err := t.idx.OpenColumn(g, c)
		if err != nil {
			return nil, false
		}
		row[c] = r.Value(loc.Tuple)
	}
	return row, true
}

// anyDeltaUnsettledLocked reports whether any delta store carries version
// state (provisional rows, unsettled commits, or tombstones).
func (t *Table) anyDeltaUnsettledLocked() bool {
	if t.open.Unsettled() {
		return true
	}
	for _, s := range t.closed {
		if s.Unsettled() {
			return true
		}
	}
	for _, s := range t.moving {
		if s.Unsettled() {
			return true
		}
	}
	return false
}

func (t *Table) deltaByIDLocked(id int) *delta.Store {
	if t.open != nil && t.open.ID == id {
		return t.open
	}
	for _, s := range t.closed {
		if s.ID == id {
			return s
		}
	}
	return t.moving[id]
}

// DeleteAt marks the row at loc deleted (§4.1): delta rows are removed from
// their B-tree (or tombstoned when snapshots pin them); compressed rows are
// marked in the delete bitmap. A WAL append failure reports false (the
// delete did not happen).
func (t *Table) DeleteAt(loc Locator) bool {
	ok, _ := t.DeleteAtTxn(TxnRef{}, loc)
	return ok
}

// DeleteAtTxn deletes the row at loc on behalf of tx, surfacing
// ErrWriteConflict when another transaction already wrote the row.
func (t *Table) DeleteAtTxn(tx TxnRef, loc Locator) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	wc := t.writeCtxLocked(tx)
	defer t.finishWrite(wc)
	return t.deleteAtLocked(loc, wc)
}

// deleteAtLocked deletes the row at loc on behalf of wc. The sequence is
// probe, log, mark — all under t.mu: the probe rejects conflicts and
// already-deleted rows before anything is logged (a conflict must leave no
// record, or recovery would replay the loser's delete), and the mark after a
// successful append cannot fail because the lock kept the probed state fixed.
func (t *Table) deleteAtLocked(loc Locator, wc writeCtx) (bool, error) {
	if loc.InDelta {
		s := t.deltaByIDLocked(loc.DeltaID)
		if s == nil {
			return false, nil
		}
		switch s.CheckDelete(loc.Key, wc.self, wc.asOf) {
		case delta.MarkNotFound:
			return false, nil
		case delta.MarkConflict:
			return false, ErrWriteConflict
		}
		if err := t.logTxnWAL(&wal.Record{Type: wal.TDeltaDelete, A: uint64(loc.DeltaID), B: loc.Key}, wc.self); err != nil {
			return false, err
		}
		s.MarkDeleted(loc.Key, wc.ts, wc.self, wc.asOf)
		if wc.self != 0 {
			t.addIntentLocked(wc.self, intent{kind: intentDeltaDelete, deltaID: loc.DeltaID, key: loc.Key})
		}
		t.deltaEpoch++
		return true, nil
	}
	g := t.idx.Group(loc.Group)
	if g == nil || loc.Tuple < 0 || loc.Tuple >= g.Rows {
		return false, nil
	}
	switch t.deletes.CheckDelete(loc.Group, loc.Tuple, wc.self, wc.asOf) {
	case delta.MarkNotFound:
		return false, nil
	case delta.MarkConflict:
		return false, ErrWriteConflict
	}
	if err := t.logTxnWAL(&wal.Record{Type: wal.TDeleteSet, A: uint64(loc.Group), B: uint64(loc.Tuple)}, wc.self); err != nil {
		return false, err
	}
	t.deletes.MarkDeleted(loc.Group, loc.Tuple, wc.ts, wc.self, wc.asOf)
	if wc.self != 0 {
		t.addIntentLocked(wc.self, intent{kind: intentBitmapDelete, group: loc.Group, tuple: loc.Tuple})
	}
	t.deltaEpoch++
	return true, nil
}

// DeleteWhere deletes all rows matching pred and returns the count. The scan
// and the deletes run under one exclusive lock, so DML is serialized.
func (t *Table) DeleteWhere(pred func(sqltypes.Row) bool) (int, error) {
	return t.DeleteWhereTxn(TxnRef{}, pred)
}

// DeleteWhereTxn deletes all rows matching pred on behalf of tx. The
// statement sees tx's snapshot (plus its own earlier writes); a row a
// concurrent transaction already wrote surfaces as ErrWriteConflict.
func (t *Table) DeleteWhereTxn(tx TxnRef, pred func(sqltypes.Row) bool) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	wc := t.writeCtxLocked(tx)
	defer t.finishWrite(wc)
	locs, err := t.matchLocked(pred, wc)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, loc := range locs {
		ok, err := t.deleteAtLocked(loc, wc)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// UpdateWhere applies set to every row matching pred, implemented as
// delete + insert per the paper's §4.1. It returns the update count.
func (t *Table) UpdateWhere(pred func(sqltypes.Row) bool, set func(sqltypes.Row) sqltypes.Row) (int, error) {
	return t.UpdateWhereTxn(TxnRef{}, pred, set)
}

// UpdateWhereTxn applies set to every row matching pred on behalf of tx
// (delete + insert under one write context, so both halves carry the same
// timestamp and no snapshot sees the delete without the insert).
func (t *Table) UpdateWhereTxn(tx TxnRef, pred func(sqltypes.Row) bool, set func(sqltypes.Row) sqltypes.Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	wc := t.writeCtxLocked(tx)
	defer t.finishWrite(wc)
	locs, err := t.matchLocked(pred, wc)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, loc := range locs {
		row, ok := t.fetchRowViewLocked(loc, wc.asOf, wc.self)
		if !ok {
			continue
		}
		updated := set(row.Clone())
		if err := t.checkRow(updated); err != nil {
			return n, err
		}
		deleted, err := t.deleteAtLocked(loc, wc)
		if err != nil {
			return n, err
		}
		if !deleted {
			continue
		}
		if _, _, err := t.insertOpenLocked(t.coerceRow(updated), wc); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// matchLocked scans the whole table row-at-a-time collecting locators of rows
// matching pred as seen by wc's snapshot. DML-path only; queries use the
// vectorized scan. The insert half of an update appends to the open store
// mid-iteration, so the open store is scanned through a key bound captured
// first — but callers collect locators fully before mutating anyway.
func (t *Table) matchLocked(pred func(sqltypes.Row) bool, wc writeCtx) ([]Locator, error) {
	var locs []Locator
	for _, g := range t.idx.Groups() {
		readers := make([]*colstore.ColumnReader, t.Schema.Len())
		for c := range readers {
			r, err := t.idx.OpenColumn(g, c)
			if err != nil {
				return nil, err
			}
			readers[c] = r
		}
		del := t.deletes.SnapshotView(g.ID, wc.asOf, wc.self)
		row := make(sqltypes.Row, t.Schema.Len())
		for i := 0; i < g.Rows; i++ {
			if del != nil && del.Get(i) {
				continue
			}
			for c, r := range readers {
				row[c] = r.Value(i)
			}
			if pred(row) {
				locs = append(locs, Locator{Group: g.ID, Tuple: i})
			}
		}
	}
	scanDelta := func(s *delta.Store) error {
		return s.ScanVisible(wc.asOf, wc.self, func(k uint64, row sqltypes.Row) bool {
			if pred(row) {
				locs = append(locs, Locator{InDelta: true, DeltaID: s.ID, Key: k})
			}
			return true
		})
	}
	for _, s := range t.closed {
		if err := scanDelta(s); err != nil {
			return nil, err
		}
	}
	for _, s := range t.moving {
		if err := scanDelta(s); err != nil {
			return nil, err
		}
	}
	if err := scanDelta(t.open); err != nil {
		return nil, err
	}
	return locs, nil
}

// Rows returns the live row count in the latest committed state: compressed
// minus deleted plus delta rows (provisional inserts excluded, tombstoned
// rows excluded).
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	stable := t.stableTSLocked()
	n := t.idx.Rows() - t.deletes.Count()
	n += t.open.LiveRows(stable, 0)
	for _, s := range t.closed {
		n += s.LiveRows(stable, 0)
	}
	for _, s := range t.moving {
		n += s.LiveRows(stable, 0)
	}
	return n
}

// Stats summarizes table state for monitoring and experiments.
type Stats struct {
	CompressedGroups int
	CompressedRows   int
	DeletedRows      int
	DeltaStores      int // open + closed + moving
	DeltaRows        int
	DiskBytes        int
	RawBytes         int
	DeltaMemBytes    int
}

// Stat returns a snapshot of table statistics.
func (t *Table) Stat() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := Stats{
		CompressedGroups: len(t.idx.Groups()),
		CompressedRows:   t.idx.Rows(),
		DeletedRows:      t.deletes.Count(),
		DiskBytes:        t.idx.DiskBytes(),
		RawBytes:         t.idx.RawBytes(),
	}
	add := func(s *delta.Store) {
		st.DeltaStores++
		st.DeltaRows += s.Rows()
		st.DeltaMemBytes += s.MemBytes()
	}
	add(t.open)
	for _, s := range t.closed {
		add(s)
	}
	for _, s := range t.moving {
		add(s)
	}
	return st
}

// Sample draws up to n rows uniformly at random using bookmarks (§4.4):
// random positions in the logical row space resolve through locators, with
// deleted rows skipped. Positions are batched per row group so each sampled
// group's segments are opened (and decoded) once, not once per row.
func (t *Table) Sample(n int, rng *rand.Rand) []sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()

	// Build the position -> locator space: compressed groups first, then
	// delta stores (keys materialized for random access).
	type span struct {
		rows  int
		group *colstore.RowGroup
		keys  []uint64
		store *delta.Store
	}
	var spans []span
	total := 0
	for _, g := range t.idx.Groups() {
		spans = append(spans, span{rows: g.Rows, group: g})
		total += g.Rows
	}
	stable := t.stableTSLocked()
	collect := func(s *delta.Store) {
		if s.Rows() == 0 {
			return
		}
		keys := make([]uint64, 0, s.Rows())
		s.ScanVisible(stable, 0, func(k uint64, _ sqltypes.Row) bool { keys = append(keys, k); return true })
		if len(keys) == 0 {
			return
		}
		spans = append(spans, span{rows: len(keys), keys: keys, store: s})
		total += len(keys)
	}
	collect(t.open)
	for _, s := range t.closed {
		collect(s)
	}
	for _, s := range t.moving {
		collect(s)
	}
	if total == 0 {
		return nil
	}

	out := make([]sqltypes.Row, 0, n)
	readerCache := map[int][]*colstore.ColumnReader{}
	attempts := 0
	// Sample without replacement: a duplicate row would bias the distinct
	// estimators (a full-table draw with replacement misses ~1/e of rows).
	picked := make(map[int]bool, n)
	for len(out) < n && len(picked) < total && attempts < 4*n+100 {
		// Draw a batch of picks, grouped by span, then resolve span by span.
		want := n - len(out)
		bySpan := map[int][]int{}
		for i := 0; i < want; i++ {
			attempts++
			var pos int
			if n >= total {
				// The whole table fits in the sample: sweep every position
				// instead of waiting for rejection sampling to cover it.
				pos = attempts - 1
				if pos >= total {
					break
				}
			} else {
				pos = rng.Intn(total)
			}
			if picked[pos] {
				continue
			}
			picked[pos] = true
			for si := range spans {
				if pos < spans[si].rows {
					bySpan[si] = append(bySpan[si], pos)
					break
				}
				pos -= spans[si].rows
			}
		}
		// Resolve spans in index order so the rows that survive the final
		// truncation to n are a deterministic function of the rng stream
		// (map iteration order must not leak into statistics or goldens).
		spanOrder := make([]int, 0, len(bySpan))
		for si := range bySpan {
			spanOrder = append(spanOrder, si)
		}
		sort.Ints(spanOrder)
		for _, si := range spanOrder {
			positions := bySpan[si]
			sp := &spans[si]
			if sp.group == nil {
				for _, pos := range positions {
					if row, ok := sp.store.Get(sp.keys[pos]); ok {
						out = append(out, row)
					}
				}
				continue
			}
			readers := readerCache[sp.group.ID]
			if readers == nil {
				readers = make([]*colstore.ColumnReader, t.Schema.Len())
				ok := true
				for c := range readers {
					r, err := t.idx.OpenColumn(sp.group, c)
					if err != nil {
						ok = false
						break
					}
					readers[c] = r
				}
				if !ok {
					continue
				}
				readerCache[sp.group.ID] = readers
			}
			for _, pos := range positions {
				if t.deletes.IsDeleted(sp.group.ID, pos) {
					continue
				}
				row := make(sqltypes.Row, t.Schema.Len())
				for c, r := range readers {
					row[c] = r.Value(pos)
				}
				out = append(out, row)
			}
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// --- Tuple mover (§4.3) ---

// MoveOnce compresses one CLOSED delta store into a row group, replaying any
// deletes that arrived during compression via the delete buffer. It reports
// whether a store was moved. Every outcome is recorded in the table's health
// struct (see Health); on failure the source store is re-queued so no rows
// are lost and a later retry can succeed.
func (t *Table) MoveOnce() (moved bool, err error) {
	defer func() {
		if err != nil {
			t.health.recordFailure(err)
		} else if moved {
			t.health.recordSuccess()
		}
	}()
	t.mu.Lock()
	// Settle first: commits since the last pass may have pushed the horizon
	// past this store's remaining version state. A store that still carries
	// versions (rows pinned by active snapshots or in-flight transactions)
	// cannot compress — row groups have no per-row versions — so skip it and
	// report nothing to move; the next pass retries after the horizon moves.
	t.settleLocked()
	pick := -1
	for i, s := range t.closed {
		if !s.Unsettled() {
			pick = i
			break
		}
	}
	if pick < 0 {
		t.mu.Unlock()
		return false, nil
	}
	s := t.closed[pick]
	t.closed = append(t.closed[:pick], t.closed[pick+1:]...)
	keys, rows, err := s.BeginMove()
	if err != nil {
		// BeginMove does not consume the store; re-queue it for retry.
		t.closed = append([]*delta.Store{s}, t.closed...)
		t.mu.Unlock()
		return false, err
	}
	t.moving[s.ID] = s
	t.mu.Unlock()

	if len(rows) == 0 {
		// Everything was deleted while the store sat closed; just drop it.
		t.mu.Lock()
		if werr := t.logWAL(&wal.Record{Type: wal.TDeltaDrop, A: uint64(s.ID)}); werr != nil {
			s.AbortMove()
			t.closed = append([]*delta.Store{s}, t.closed...)
			delete(t.moving, s.ID)
			t.mu.Unlock()
			return false, werr
		}
		delete(t.moving, s.ID)
		t.deltaEpoch++
		t.mu.Unlock()
		return true, nil
	}

	// Compression happens outside the table lock: inserts and queries
	// proceed concurrently (the paper's tuple mover does not block trickle
	// inserts). The built group is published under the table lock together
	// with the removal of the source delta store, so no snapshot can see the
	// same row twice. compressMu stays held through the publish so the WAL
	// publish record lands in build order (see the field comment).
	t.compressMu.Lock()
	bufs := colstore.BuffersFromRows(t.Schema, rows)
	g, perm, dicts, err := t.buildGroup(bufs)
	if err != nil {
		t.compressMu.Unlock()
		// Put the store back (and roll it back to CLOSED) so rows are not
		// lost and a later retry can move it.
		t.mu.Lock()
		delete(t.moving, s.ID)
		s.AbortMove()
		t.closed = append([]*delta.Store{s}, t.closed...)
		t.mu.Unlock()
		mMoverAborts.Inc()
		return false, err
	}

	// Inverse permutation: old position -> new tuple id.
	inv := make([]int, len(rows))
	if perm == nil {
		for i := range inv {
			inv[i] = i
		}
	} else {
		for newPos, oldPos := range perm {
			inv[oldPos] = newPos
		}
	}

	if t.moverTestHookAfterBuild != nil {
		t.moverTestHookAfterBuild()
	}

	t.mu.Lock()
	// Publishing strips the source store's version state, so every delete
	// that landed while we compressed must be settled (committed at or below
	// the horizon) before the group can go live — otherwise a pinned snapshot
	// would see the row vanish, or an uncommitted delete would become
	// permanent. If any buffered delete is still provisional or above the
	// horizon, put the store back and let a later pass retry; the built
	// group's blobs become orphans (recovery GCs them).
	t.settleLocked()
	h := t.horizonLocked()
	for _, bd := range s.PeekDeleteBuffer() {
		if bd.End != 0 && (bd.End&delta.TxnBit != 0 || bd.End > h) {
			delete(t.moving, s.ID)
			s.AbortMove()
			t.closed = append([]*delta.Store{s}, t.closed...)
			t.mu.Unlock()
			t.compressMu.Unlock()
			mMoverAborts.Inc()
			return false, nil
		}
	}
	// Deletes that landed while we compressed were acknowledged durably as
	// TDeltaDelete records; replay of the publish record drops the whole
	// delta store, so the buffered keys must survive as delete-bitmap
	// entries on the new group. They travel inside the publish record
	// itself — a separately-logged delete after a durable publish is a
	// crash window that resurrects acknowledged deletes.
	var pending []int
	for _, bd := range s.DrainDeleteBuffer() {
		i := sort.Search(len(keys), func(j int) bool { return keys[j] >= bd.Key })
		if i < len(keys) && keys[i] == bd.Key {
			pending = append(pending, inv[i])
		}
	}
	if werr := t.publishLocked(g, dicts, s.ID, pending); werr != nil {
		// The publish record never made it to the log; roll back like a
		// build failure. The group's blobs become orphans (recovery GCs
		// them; in-process they are unreachable but small). The drained
		// delete buffer is already reflected in the store's tree, so a
		// retry's BeginMove sees the post-delete row set.
		delete(t.moving, s.ID)
		s.AbortMove()
		t.closed = append([]*delta.Store{s}, t.closed...)
		t.mu.Unlock()
		t.compressMu.Unlock()
		mMoverAborts.Inc()
		return false, werr
	}
	delete(t.moving, s.ID)
	t.deltaEpoch++
	t.mu.Unlock()
	t.compressMu.Unlock()
	return true, nil
}

// MoveAll drains every closed delta store.
func (t *Table) MoveAll() error {
	for {
		moved, err := t.MoveOnce()
		if err != nil {
			return err
		}
		if !moved {
			return nil
		}
	}
}

// FlushOpen force-closes the open delta store (regardless of size) and moves
// everything — used by loads that want a fully compressed table.
func (t *Table) FlushOpen() error {
	t.mu.Lock()
	if t.open.Rows() > 0 {
		if err := t.closeOpenLocked(); err != nil {
			t.mu.Unlock()
			return err
		}
	}
	t.mu.Unlock()
	return t.MoveAll()
}

type mover struct {
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// StartTupleMover launches the background tuple mover, which wakes on a timer
// and whenever a delta store closes.
func (t *Table) StartTupleMover(interval time.Duration) {
	t.mu.Lock()
	if t.mover != nil {
		t.mu.Unlock()
		return
	}
	m := &mover{kick: make(chan struct{}, 1), stop: make(chan struct{}), done: make(chan struct{})}
	t.mover = m
	t.mu.Unlock()

	go func() {
		defer close(m.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
			case <-m.kick:
			}
			if !t.drainClosed(m) {
				return
			}
		}
	}()
}

// drainClosed moves closed delta stores until none remain, retrying failures
// with exponential backoff (the self-healing path: MoveOnce re-queues the
// store, its error lands in the health struct, and the next attempt waits
// out the current backoff). Returns false if the mover was stopped while
// waiting.
func (t *Table) drainClosed(m *mover) bool {
	for {
		moved, err := t.MoveOnce()
		if err == nil {
			if !moved {
				return true
			}
			continue
		}
		// MoveOnce recorded the failure; wait out the backoff it chose,
		// staying responsive to StopTupleMover.
		timer := time.NewTimer(t.health.snapshot(true).Backoff)
		select {
		case <-m.stop:
			timer.Stop()
			return false
		case <-timer.C:
		}
	}
}

// StopTupleMover stops the background tuple mover and waits for it to exit.
func (t *Table) StopTupleMover() {
	t.mu.Lock()
	m := t.mover
	t.mover = nil
	t.mu.Unlock()
	if m == nil {
		return
	}
	close(m.stop)
	<-m.done
}

func (t *Table) kickMover() {
	t.mu.RLock()
	m := t.mover
	t.mu.RUnlock()
	if m != nil {
		select {
		case m.kick <- struct{}{}:
		default:
		}
	}
}

// Rebuild recompresses the whole table (ALTER INDEX ... REBUILD in §4):
// deleted rows are physically removed, delta rows are folded into compressed
// row groups, and the delete bitmap empties. The table is locked for the
// duration (rebuild is an offline maintenance operation in this engine).
func (t *Table) Rebuild() error {
	// compressMu before t.mu: the table-wide lock order (see compressMu doc).
	t.compressMu.Lock()
	defer t.compressMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()

	// Rebuild flattens everything into version-free compressed groups, so it
	// cannot run while transactions hold provisional state or snapshots pin
	// unsettled versions.
	t.settleLocked()
	if len(t.txnPending) > 0 || t.deletes.AnyUnsettled() || t.anyDeltaUnsettledLocked() {
		return ErrBusyTxns
	}

	// Collect all live rows.
	var rows []sqltypes.Row
	for _, g := range t.idx.Groups() {
		readers := make([]*colstore.ColumnReader, t.Schema.Len())
		for c := range readers {
			r, err := t.idx.OpenColumn(g, c)
			if err != nil {
				return err
			}
			readers[c] = r
		}
		del := t.deletes.Snapshot(g.ID)
		for i := 0; i < g.Rows; i++ {
			if del != nil && del.Get(i) {
				continue
			}
			row := make(sqltypes.Row, t.Schema.Len())
			for c, r := range readers {
				row[c] = r.Value(i)
			}
			rows = append(rows, row)
		}
	}
	collect := func(s *delta.Store) error {
		return s.Scan(func(_ uint64, row sqltypes.Row) bool {
			rows = append(rows, row)
			return true
		})
	}
	if err := collect(t.open); err != nil {
		return err
	}
	for _, s := range t.closed {
		if err := collect(s); err != nil {
			return err
		}
	}
	for _, s := range t.moving {
		if err := collect(s); err != nil {
			return err
		}
	}

	// Build replacement row groups before tearing anything down (compressMu
	// is already held for the whole rebuild).
	var newGroups []*colstore.RowGroup
	var newDicts [][]colstore.DictAppend
	for i := 0; i < len(rows); i += t.Opts.RowGroupSize {
		end := i + t.Opts.RowGroupSize
		if end > len(rows) {
			end = len(rows)
		}
		bufs := colstore.BuffersFromRows(t.Schema, rows[i:end])
		g, _, dicts, err := t.buildGroup(bufs)
		if err != nil {
			return err
		}
		newGroups = append(newGroups, g)
		newDicts = append(newDicts, dicts)
	}

	// Swap: drop old groups and delta state, publish the rebuilt groups.
	// Retires are logged before the blobs go away so a crash between them
	// only leaves orphan blob files (recovery GCs those), never a directory
	// entry whose blobs are gone.
	for _, g := range t.idx.Groups() {
		if err := t.logWAL(&wal.Record{Type: wal.TGroupRetire, A: uint64(g.ID)}); err != nil {
			return err
		}
		t.idx.RemoveGroup(g.ID)
		t.deletes.DropGroup(g.ID)
	}
	for i, g := range newGroups {
		if err := t.publishLocked(g, newDicts[i], 0, nil); err != nil {
			return err
		}
	}
	if err := t.logWAL(&wal.Record{Type: wal.TTableReset, A: uint64(t.deltaID + 1)}); err != nil {
		return err
	}
	t.open = t.newDeltaStoreLocked()
	t.closed = nil
	t.moving = make(map[int]*delta.Store)
	t.deltaEpoch++
	return nil
}

// MergeSmallGroups consolidates undersized compressed row groups (live rows
// below half the target row-group size) into full-size groups, dropping
// their delete-bitmap entries in the process. REORGANIZE runs it after
// draining delta stores; SQL Server gained the equivalent self-merge in the
// release after the paper as a natural extension of the tuple mover.
// It returns the number of groups merged away.
func (t *Table) MergeSmallGroups() (int, error) {
	t.compressMu.Lock()
	defer t.compressMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()

	// Merging rewrites groups without version state, so skip groups whose
	// delete sets are still in flux (recent or pending entries).
	t.settleLocked()
	half := t.Opts.RowGroupSize / 2
	var victims []*colstore.RowGroup
	for _, g := range t.idx.Groups() {
		if t.deletes.HasUnsettled(g.ID) {
			continue
		}
		live := g.Rows - t.deletes.DeletedInGroup(g.ID)
		if live < half {
			victims = append(victims, g)
		}
	}
	if len(victims) < 2 {
		return 0, nil
	}

	// Materialize the victims' live rows.
	var rows []sqltypes.Row
	for _, g := range victims {
		readers := make([]*colstore.ColumnReader, t.Schema.Len())
		for c := range readers {
			r, err := t.idx.OpenColumn(g, c)
			if err != nil {
				return 0, err
			}
			readers[c] = r
		}
		del := t.deletes.Snapshot(g.ID)
		for i := 0; i < g.Rows; i++ {
			if del != nil && del.Get(i) {
				continue
			}
			row := make(sqltypes.Row, t.Schema.Len())
			for c, r := range readers {
				row[c] = r.Value(i)
			}
			rows = append(rows, row)
		}
	}

	// Build replacements, then swap (compressMu held for the whole merge).
	var merged []*colstore.RowGroup
	var mergedDicts [][]colstore.DictAppend
	for i := 0; i < len(rows); i += t.Opts.RowGroupSize {
		end := i + t.Opts.RowGroupSize
		if end > len(rows) {
			end = len(rows)
		}
		bufs := colstore.BuffersFromRows(t.Schema, rows[i:end])
		g, _, dicts, err := t.buildGroup(bufs)
		if err != nil {
			return 0, err
		}
		merged = append(merged, g)
		mergedDicts = append(mergedDicts, dicts)
	}

	for _, g := range victims {
		if err := t.logWAL(&wal.Record{Type: wal.TGroupRetire, A: uint64(g.ID)}); err != nil {
			return 0, err
		}
		t.idx.RemoveGroup(g.ID)
		t.deletes.DropGroup(g.ID)
	}
	for i, g := range merged {
		if err := t.publishLocked(g, mergedDicts[i], 0, nil); err != nil {
			return 0, err
		}
	}
	return len(victims) - len(merged), nil
}
