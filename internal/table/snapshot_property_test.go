package table

import (
	"sync"
	"testing"
	"time"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/wal"
)

// Snapshot consistency properties, checked under concurrent DML with the
// tuple mover racing, and at every step of a WAL replay:
//
//  1. No duplicate: an id never appears both delta-resident and live in a
//     compressed group (or twice anywhere).
//  2. No resurrection: an id whose delete completed before the snapshot was
//     cut is not visible — in particular never "deleted in the bitmap but
//     still delta-resident" via a stale store.
//
// These are the invariants the mover's publish-under-lock and the recovery
// path's replay ordering exist to protect.

// snapshotOccurrences counts every visible occurrence of each id.
func snapshotOccurrences(t *testing.T, snap *Snapshot) map[int64]int {
	t.Helper()
	out := map[int64]int{}
	for _, g := range snap.Groups {
		del := snap.Deletes[g.ID]
		r, err := snap.OpenColumn(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Rows; i++ {
			if del != nil && del.Get(i) {
				continue
			}
			out[r.Value(i).I]++
		}
	}
	for _, row := range snap.Delta {
		out[row[0].I]++
	}
	return out
}

// checkSnapshotInvariants cuts a snapshot and verifies both properties.
// confirmedDeleted must be ids whose delete completed before this call.
func checkSnapshotInvariants(t *testing.T, tb *Table, confirmedDeleted map[int64]bool, ctx string) {
	t.Helper()
	occ := snapshotOccurrences(t, tb.Snapshot())
	for id, n := range occ {
		if n > 1 {
			t.Fatalf("%s: id %d visible %d times (delta-resident and compressed at once)", ctx, id, n)
		}
		if confirmedDeleted[id] {
			t.Fatalf("%s: id %d resurrected after a completed delete", ctx, id)
		}
	}
}

// TestSnapshotInvariantsUnderConcurrentDML races one writer, one deleter,
// the background tuple mover, and a snapshot checker.
func TestSnapshotInvariantsUnderConcurrentDML(t *testing.T) {
	tb := New(storage.NewStore(storage.DefaultBufferPoolBytes), "p", testSchema(), Options{
		RowGroupSize:      32,
		BulkLoadThreshold: 1 << 20,
		Columnstore:       DefaultOptions().Columnstore,
	})
	tb.StartTupleMover(100 * time.Microsecond)
	defer tb.StopTupleMover()

	const total = 2000
	var mu sync.Mutex
	deleted := map[int64]bool{} // ids whose DeleteWhere has returned
	var inserted int64          // ids 1..inserted have been acknowledged

	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := int64(1); i <= total; i++ {
			if _, err := tb.Insert(mkRow(i)); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			inserted = i
			mu.Unlock()
		}
	}()

	wg.Add(1)
	go func() { // deleter: every third id, only once its insert is acknowledged
		defer wg.Done()
		next := int64(3)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			hi := inserted
			mu.Unlock()
			if next > total {
				return
			}
			if next > hi {
				time.Sleep(50 * time.Microsecond)
				continue
			}
			id := next
			if _, err := tb.DeleteWhere(func(row sqltypes.Row) bool { return row[0].I == id }); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			deleted[id] = true
			mu.Unlock()
			next += 3
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		// Freeze the confirmed-delete set BEFORE cutting the snapshot: every
		// id in it completed strictly earlier, so the snapshot must not show it.
		mu.Lock()
		confirmed := make(map[int64]bool, len(deleted))
		for id := range deleted {
			confirmed[id] = true
		}
		mu.Unlock()
		checkSnapshotInvariants(t, tb, confirmed, "concurrent DML")
		select {
		case <-done:
			close(stop)
			// Final state: everything inserted, every third id gone.
			occ := snapshotOccurrences(t, tb.Snapshot())
			for i := int64(1); i <= total; i++ {
				want := 1
				if i%3 == 0 {
					want = 0
				}
				if occ[i] != want {
					t.Fatalf("final state: id %d visible %d times, want %d", i, occ[i], want)
				}
			}
			return
		default:
		}
	}
}

// TestSnapshotInvariantsMidReplay replays a real workload's WAL one record
// at a time into a fresh table and checks the invariants between every
// record — the states a query would see if the engine served reads during
// recovery. Deletes confirmed by the log (TDeltaDelete/TDeleteSet already
// replayed) must stay invisible from that record on.
func TestSnapshotInvariantsMidReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Create(dir, 1, wal.Options{Policy: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{RowGroupSize: 16, BulkLoadThreshold: 1 << 20, Columnstore: DefaultOptions().Columnstore}
	// One store for both tables: segment blobs reach disk via write-through
	// backing before their publish record is logged, so at replay time the
	// blobs are already loadable — sharing the store models exactly that.
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	src := New(store, "p", testSchema(), opts)
	src.SetWAL(w)
	for i := int64(1); i <= 100; i++ {
		if _, err := src.Insert(mkRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.FlushOpen(); err != nil {
		t.Fatal(err)
	}
	for i := int64(5); i <= 50; i += 5 {
		id := i
		if _, err := src.DeleteWhere(func(row sqltypes.Row) bool { return row[0].I == id }); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(101); i <= 130; i++ {
		if _, err := src.Insert(mkRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.FlushOpen(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay into a fresh table sharing no state with src, pausing after
	// every record to cut and check a snapshot.
	dst := New(store, "p", testSchema(), opts)
	confirmed := map[int64]bool{}
	wasVisible := map[int64]bool{}
	step := 0
	_, err = wal.Scan(dir, 1, false, func(_ uint64, rec *wal.Record) error {
		if err := dst.ReplayRecord(rec); err != nil {
			return err
		}
		// A replayed delete is durable from this record on. (Delete records
		// carry the tuple key / position, not the id, so re-read the source
		// of truth: what ids does dst consider deleted now? Any id that
		// disappears from the snapshot after a delete record must never
		// come back — track the visible set and require monotonicity.)
		step++
		occ := snapshotOccurrences(t, dst.Snapshot())
		for id, n := range occ {
			if n > 1 {
				t.Fatalf("replay step %d (%v): id %d visible %d times", step, rec.Type, id, n)
			}
			if confirmed[id] {
				t.Fatalf("replay step %d (%v): id %d resurrected after its delete replayed", step, rec.Type, id)
			}
		}
		if rec.Type == wal.TDeltaDelete || rec.Type == wal.TDeleteSet {
			// Whatever vanished by now stays vanished: record ids currently
			// invisible that once were visible.
			for id := int64(1); id <= 130; id++ {
				if occ[id] == 0 && wasVisible[id] {
					confirmed[id] = true
				}
			}
		}
		for id, n := range occ {
			if n > 0 {
				wasVisible[id] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dst.FinishRecovery()

	// End state equals the source table's live rows.
	srcOcc := snapshotOccurrences(t, src.Snapshot())
	dstOcc := snapshotOccurrences(t, dst.Snapshot())
	for id := int64(1); id <= 130; id++ {
		if srcOcc[id] != dstOcc[id] {
			t.Fatalf("replayed table diverges at id %d: src %d, dst %d", id, srcOcc[id], dstOcc[id])
		}
	}
}
