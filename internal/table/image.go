package table

import (
	"encoding/binary"
	"fmt"
	"sort"

	"apollo/internal/colstore"
	"apollo/internal/delta"
	"apollo/internal/encoding"
)

// Checkpoint image of one table's state. The image captures everything the
// WAL would otherwise have to replay: delta-store contents (encoded rows),
// the delete bitmap, the row-group directory, and the primary dictionaries.
// Segment payload blobs are NOT in the image — they live as blob files in
// the store's disk backing and the directory references them by id.

const (
	imgStateOpen   byte = 0
	imgStateClosed byte = 1
)

// MarshalState serializes the table's mutable state under the table lock.
// Records logged before this call are fully reflected; records logged after
// are not — the checkpoint protocol replays them idempotently.
func (t *Table) MarshalState() []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()

	dst := binary.AppendUvarint(nil, uint64(t.deltaID))

	// Delta stores: the open store first, then closed and moving (moving
	// stores image as CLOSED — their in-flight build is not durable until
	// its publish record is, and recovery re-moves them).
	stores := make([]*delta.Store, 0, 1+len(t.closed)+len(t.moving))
	states := make([]byte, 0, cap(stores))
	stores = append(stores, t.open)
	states = append(states, imgStateOpen)
	for _, s := range t.closed {
		stores = append(stores, s)
		states = append(states, imgStateClosed)
	}
	for _, s := range t.moving {
		stores = append(stores, s)
		states = append(states, imgStateClosed)
	}
	dst = binary.AppendUvarint(dst, uint64(len(stores)))
	for i, s := range stores {
		dst = binary.AppendUvarint(dst, uint64(s.ID))
		dst = append(dst, states[i])
		dst = binary.AppendUvarint(dst, s.NextKey())
		dst = binary.AppendUvarint(dst, uint64(s.Rows()))
		s.DumpRaw(func(key uint64, enc []byte) bool {
			dst = binary.AppendUvarint(dst, key)
			dst = binary.AppendUvarint(dst, uint64(len(enc)))
			dst = append(dst, enc...)
			return true
		})
	}

	// Delete bitmap, group ids sorted for a deterministic image.
	dump := t.deletes.Dump()
	gids := make([]int, 0, len(dump))
	for g := range dump {
		gids = append(gids, g)
	}
	sort.Ints(gids)
	dst = binary.AppendUvarint(dst, uint64(len(gids)))
	for _, g := range gids {
		words := dump[g]
		dst = binary.AppendUvarint(dst, uint64(g))
		dst = binary.AppendUvarint(dst, uint64(len(words)))
		for _, w := range words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	}

	// Row-group directory.
	groups := t.idx.Groups()
	dst = binary.AppendUvarint(dst, uint64(len(groups)))
	for _, g := range groups {
		dst = colstore.AppendRowGroup(dst, g)
	}
	dst = binary.AppendUvarint(dst, uint64(t.idx.NextGroupID()))

	// Primary dictionaries.
	for c := range t.Schema.Cols {
		d := t.idx.Primary(c)
		if d == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = d.Marshal(dst)
	}

	// Row-version entries of unsettled delta rows (provisional writes of
	// in-flight transactions, commits above the snapshot horizon, tombstones
	// awaiting purge), sorted for a deterministic image. Restore re-derives
	// the per-transaction intent index from the TxnBit-tagged fields, so
	// provisional state needs no separate section.
	type verEnt struct {
		storeID int
		key     uint64
		v       delta.RowVersion
	}
	var vers []verEnt
	for _, s := range stores {
		s.DumpVersions(func(key uint64, v delta.RowVersion) bool {
			vers = append(vers, verEnt{storeID: s.ID, key: key, v: v})
			return true
		})
	}
	sort.Slice(vers, func(i, j int) bool {
		if vers[i].storeID != vers[j].storeID {
			return vers[i].storeID < vers[j].storeID
		}
		return vers[i].key < vers[j].key
	})
	dst = binary.AppendUvarint(dst, uint64(len(vers)))
	for _, e := range vers {
		dst = binary.AppendUvarint(dst, uint64(e.storeID))
		dst = binary.AppendUvarint(dst, e.key)
		dst = binary.AppendUvarint(dst, e.v.Begin)
		dst = binary.AppendUvarint(dst, e.v.End)
	}

	// Provisional delete-bitmap entries (the committed ones were folded into
	// the base bitmap by Dump above).
	pend := t.deletes.DumpPending()
	sort.Slice(pend, func(i, j int) bool {
		if pend[i].Group != pend[j].Group {
			return pend[i].Group < pend[j].Group
		}
		return pend[i].Tuple < pend[j].Tuple
	})
	dst = binary.AppendUvarint(dst, uint64(len(pend)))
	for _, p := range pend {
		dst = binary.AppendUvarint(dst, uint64(p.Group))
		dst = binary.AppendUvarint(dst, uint64(p.Tuple))
		dst = binary.AppendUvarint(dst, p.Owner)
	}
	return dst
}

// RestoreState rebuilds the table's mutable state from a MarshalState image.
// The table must be freshly created (New) with the same schema and options.
func (t *Table) RestoreState(buf []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	pos := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("table %s: truncated state image", t.Name)
		}
		pos += n
		return v, nil
	}

	deltaID, err := uv()
	if err != nil {
		return err
	}
	t.deltaID = int(deltaID)

	nstores, err := uv()
	if err != nil {
		return err
	}
	if nstores == 0 || nstores > 1<<20 {
		return fmt.Errorf("table %s: bad delta store count %d", t.Name, nstores)
	}
	t.open = nil
	t.closed = nil
	t.moving = make(map[int]*delta.Store)
	for i := uint64(0); i < nstores; i++ {
		id, err := uv()
		if err != nil {
			return err
		}
		if pos >= len(buf) {
			return fmt.Errorf("table %s: truncated state image", t.Name)
		}
		state := buf[pos]
		pos++
		nextKey, err := uv()
		if err != nil {
			return err
		}
		nrows, err := uv()
		if err != nil {
			return err
		}
		s := delta.NewStore(int(id), t.Schema)
		for j := uint64(0); j < nrows; j++ {
			key, err := uv()
			if err != nil {
				return err
			}
			l, err := uv()
			if err != nil {
				return err
			}
			if l > uint64(len(buf)-pos) {
				return fmt.Errorf("table %s: truncated delta row in image", t.Name)
			}
			s.RestoreRow(key, append([]byte(nil), buf[pos:pos+int(l)]...))
			pos += int(l)
		}
		s.SetNextKey(nextKey)
		switch state {
		case imgStateOpen:
			if t.open != nil {
				return fmt.Errorf("table %s: two open delta stores in image", t.Name)
			}
			t.open = s
		case imgStateClosed:
			s.SetState(delta.Closed)
			t.closed = append(t.closed, s)
		default:
			return fmt.Errorf("table %s: bad delta state %d in image", t.Name, state)
		}
	}
	if t.open == nil {
		return fmt.Errorf("table %s: no open delta store in image", t.Name)
	}

	ngroupsDel, err := uv()
	if err != nil {
		return err
	}
	if ngroupsDel > 1<<20 {
		return fmt.Errorf("table %s: bad delete-bitmap group count", t.Name)
	}
	delDump := make(map[int][]uint64, ngroupsDel)
	for i := uint64(0); i < ngroupsDel; i++ {
		g, err := uv()
		if err != nil {
			return err
		}
		nwords, err := uv()
		if err != nil {
			return err
		}
		if nwords > uint64(len(buf)-pos)/8 {
			return fmt.Errorf("table %s: truncated delete bitmap in image", t.Name)
		}
		words := make([]uint64, nwords)
		for j := range words {
			words[j] = binary.LittleEndian.Uint64(buf[pos:])
			pos += 8
		}
		delDump[int(g)] = words
	}
	t.deletes.Restore(delDump)

	ngroups, err := uv()
	if err != nil {
		return err
	}
	if ngroups > 1<<24 {
		return fmt.Errorf("table %s: bad row-group count", t.Name)
	}
	for i := uint64(0); i < ngroups; i++ {
		g, n, err := colstore.ReadRowGroup(buf[pos:])
		if err != nil {
			return fmt.Errorf("table %s: %w", t.Name, err)
		}
		pos += n
		t.idx.RestoreGroup(g)
	}
	nextGroupID, err := uv()
	if err != nil {
		return err
	}
	t.idx.SetNextGroupID(int(nextGroupID))

	for c := range t.Schema.Cols {
		if pos >= len(buf) {
			return fmt.Errorf("table %s: truncated dictionaries in image", t.Name)
		}
		present := buf[pos]
		pos++
		if present == 0 {
			continue
		}
		d, n, err := encoding.UnmarshalDict(buf[pos:])
		if err != nil {
			return fmt.Errorf("table %s: %w", t.Name, err)
		}
		pos += n
		t.idx.RestorePrimary(c, d)
	}
	// Row-version entries; TxnBit-tagged fields rebuild the per-transaction
	// intent index so recovery can finalize or roll the owners back.
	t.txnPending = nil
	byID := make(map[int]*delta.Store, 1+len(t.closed))
	byID[t.open.ID] = t.open
	for _, s := range t.closed {
		byID[s.ID] = s
	}
	nvers, err := uv()
	if err != nil {
		return err
	}
	if nvers > 1<<28 {
		return fmt.Errorf("table %s: bad row-version count", t.Name)
	}
	for i := uint64(0); i < nvers; i++ {
		sid, err := uv()
		if err != nil {
			return err
		}
		key, err := uv()
		if err != nil {
			return err
		}
		begin, err := uv()
		if err != nil {
			return err
		}
		end, err := uv()
		if err != nil {
			return err
		}
		s := byID[int(sid)]
		if s == nil {
			return fmt.Errorf("table %s: row version for unknown delta store %d", t.Name, sid)
		}
		s.RestoreVersion(key, delta.RowVersion{Begin: begin, End: end})
		if begin&delta.TxnBit != 0 {
			t.addIntentLocked(begin, intent{kind: intentInsert, deltaID: int(sid), key: key})
		}
		if end&delta.TxnBit != 0 {
			t.addIntentLocked(end, intent{kind: intentDeltaDelete, deltaID: int(sid), key: key})
		}
	}

	npend, err := uv()
	if err != nil {
		return err
	}
	if npend > 1<<28 {
		return fmt.Errorf("table %s: bad pending-delete count", t.Name)
	}
	for i := uint64(0); i < npend; i++ {
		g, err := uv()
		if err != nil {
			return err
		}
		tu, err := uv()
		if err != nil {
			return err
		}
		owner, err := uv()
		if err != nil {
			return err
		}
		t.deletes.RestorePending(int(g), int(tu), owner)
		t.addIntentLocked(owner, intent{kind: intentBitmapDelete, group: int(g), tuple: int(tu)})
	}

	if pos != len(buf) {
		return fmt.Errorf("table %s: %d trailing bytes in state image", t.Name, len(buf)-pos)
	}
	t.deltaEpoch++
	return nil
}
