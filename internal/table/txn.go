package table

import (
	"errors"

	"apollo/internal/delta"
)

// Transaction plumbing: the table applies DML on behalf of transactions
// (provisional row versions tagged with the owner's id) or autocommit
// statements (committed-at-write versions, settled when no snapshot could
// tell the difference). The transaction manager (internal/txn) owns
// timestamps; the table sees it through the Clock interface so the packages
// stay decoupled (txn imports table, not vice versa).

// ErrWriteConflict re-exports the delta layer's typed conflict error.
var ErrWriteConflict = delta.ErrWriteConflict

// ErrBusyTxns is returned by offline maintenance (REBUILD) when active
// transactions pin unsettled row versions the operation would destroy.
var ErrBusyTxns = errors.New("table busy: active transactions pin unsettled row versions")

// Clock is the table's view of the transaction manager's timestamp state.
// All methods are safe for concurrent use and may be called under the table
// lock (the manager must never acquire table locks from them).
type Clock interface {
	// StableTS returns the latest commit timestamp whose transaction (and
	// all before it) is fully applied — the snapshot a new reader gets.
	StableTS() uint64
	// Horizon returns the oldest snapshot any active transaction or pinned
	// reader may use (MaxTS when none): versions at or below it can settle.
	Horizon() uint64
	// AllocCommitTS allocates the next commit timestamp. The caller must
	// pair it with FinishCommitTS once the writes carrying it are applied;
	// StableTS does not advance past an unfinished allocation.
	AllocCommitTS() uint64
	// FinishCommitTS marks an allocated timestamp fully applied.
	FinishCommitTS(uint64)
}

// SetClock attaches the transaction manager's clock. Attach before DML
// (normally right after New or recovery). A table without a clock treats
// every write as settled — the single-session behavior.
func (t *Table) SetClock(c Clock) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = c
}

// TxnRef identifies the transaction a DML call runs in: ID is the
// TxnBit-tagged transaction id and SnapTS its snapshot. The zero TxnRef
// means autocommit.
type TxnRef struct {
	ID     uint64
	SnapTS uint64
}

// ReadView selects the snapshot a query reads: AsOf is the commit timestamp
// to read at (zero = latest committed) and Self the reader's own transaction
// id so it sees its own uncommitted writes.
type ReadView struct {
	AsOf uint64
	Self uint64
}

func (t *Table) stableTSLocked() uint64 {
	if t.clock == nil {
		return delta.MaxTS
	}
	return t.clock.StableTS()
}

func (t *Table) horizonLocked() uint64 {
	if t.clock == nil {
		return delta.MaxTS
	}
	return t.clock.Horizon()
}

// writeCtx carries one statement's write identity: self/asOf for visibility
// and conflict checks, ts for the begin/end fields of the rows it writes,
// and whether ts is a fresh autocommit allocation that must be finished.
type writeCtx struct {
	self  uint64 // TxnBit-tagged id, or 0 for autocommit
	asOf  uint64 // snapshot for visibility checks
	ts    uint64 // value written into begin/end fields (0 = settled)
	alloc bool   // ts came from AllocCommitTS; release with finishWrite
}

// writeCtxLocked resolves the write identity for one statement. Autocommit
// statements write settled versions when no snapshot is active (the
// single-session fast path, byte-identical to pre-MVCC behavior); otherwise
// they allocate a commit timestamp so concurrent snapshot readers do not see
// the statement's rows appear mid-query.
func (t *Table) writeCtxLocked(tx TxnRef) writeCtx {
	if tx.ID != 0 {
		return writeCtx{self: tx.ID, asOf: tx.SnapTS, ts: tx.ID}
	}
	asOf := t.stableTSLocked()
	if t.clock == nil || t.horizonLocked() == delta.MaxTS {
		return writeCtx{asOf: asOf}
	}
	return writeCtx{asOf: asOf, ts: t.clock.AllocCommitTS(), alloc: true}
}

// finishWrite releases an autocommit timestamp allocation.
func (t *Table) finishWrite(wc writeCtx) {
	if wc.alloc {
		t.clock.FinishCommitTS(wc.ts)
	}
}

// intentKind distinguishes the provisional effects a transaction leaves.
type intentKind uint8

const (
	intentInsert intentKind = iota // provisional delta-store row
	intentDeltaDelete              // provisional end mark on a delta row
	intentBitmapDelete             // pending delete-bitmap entry
)

// intent is one provisional effect, recorded so commit/abort (and recovery)
// can finalize or roll it back.
type intent struct {
	kind         intentKind
	deltaID      int
	key          uint64
	group, tuple int
}

func (t *Table) addIntentLocked(id uint64, in intent) {
	if t.txnPending == nil {
		t.txnPending = make(map[uint64][]intent)
	}
	t.txnPending[id] = append(t.txnPending[id], in)
}

// CommitTxn finalizes the transaction's provisional effects at commit
// timestamp cts: begin/end fields flip from the transaction id to cts,
// making them visible to snapshots at or after cts. Idempotent; a no-op for
// transactions that touched nothing here.
func (t *Table) CommitTxn(id, cts uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.commitTxnLocked(id, cts)
}

func (t *Table) commitTxnLocked(id, cts uint64) {
	ins := t.txnPending[id]
	if len(ins) == 0 {
		return
	}
	delete(t.txnPending, id)
	for _, in := range ins {
		switch in.kind {
		case intentInsert:
			if s := t.deltaByIDLocked(in.deltaID); s != nil {
				s.CommitInsert(in.key, cts)
			}
		case intentDeltaDelete:
			if s := t.deltaByIDLocked(in.deltaID); s != nil {
				s.CommitDelete(in.key, cts)
			}
		case intentBitmapDelete:
			t.deletes.CommitPending(in.group, in.tuple, cts)
		}
	}
	t.deltaEpoch++
	t.settleLocked()
}

// AbortTxn rolls back the transaction's provisional effects: provisional
// inserts vanish, provisional deletes clear. Idempotent.
func (t *Table) AbortTxn(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.abortTxnLocked(id)
}

func (t *Table) abortTxnLocked(id uint64) {
	ins := t.txnPending[id]
	if len(ins) == 0 {
		return
	}
	delete(t.txnPending, id)
	for _, in := range ins {
		switch in.kind {
		case intentInsert:
			if s := t.deltaByIDLocked(in.deltaID); s != nil {
				s.AbortInsert(in.key)
			}
		case intentDeltaDelete:
			if s := t.deltaByIDLocked(in.deltaID); s != nil {
				s.AbortDelete(in.key)
			}
		case intentBitmapDelete:
			t.deletes.AbortPending(in.group, in.tuple)
		}
	}
	t.deltaEpoch++
	t.settleLocked()
}

// settleLocked collects version state no active snapshot can distinguish:
// committed tombstones below the horizon are physically removed, settled
// version entries dropped, recent delete-bitmap entries folded into the base
// bitmap. Runs opportunistically after commits/aborts and before tuple-mover
// passes; cheap when there is nothing to do.
func (t *Table) settleLocked() {
	h := t.horizonLocked()
	purged := t.open.Purge(h)
	for _, s := range t.closed {
		purged += s.Purge(h)
	}
	for _, s := range t.moving {
		purged += s.Purge(h)
	}
	t.deletes.Settle(h)
	if purged > 0 {
		t.deltaEpoch++
	}
}

// PendingTxns returns the ids of transactions with unresolved provisional
// effects on this table (recovery uses it to roll back in-flight
// transactions; tests use it to assert cleanliness).
func (t *Table) PendingTxns() []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]uint64, 0, len(t.txnPending))
	for id := range t.txnPending {
		out = append(out, id)
	}
	return out
}
