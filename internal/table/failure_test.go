package table

import (
	"strings"
	"testing"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

// Corrupting a segment blob must surface as a checksum error through every
// read path — scans, bookmark fetches, rebuilds — not as silent bad data.
func TestSegmentCorruptionDetected(t *testing.T) {
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	tb := New(store, "t", testSchema(), smallOpts())
	if err := tb.BulkLoad(mkRows(100)); err != nil {
		t.Fatal(err)
	}
	g := tb.Index().Groups()[0]
	if err := store.Corrupt(g.Segs[0].Blob); err != nil {
		t.Fatal(err)
	}

	snap := tb.Snapshot()
	if _, err := snap.OpenColumn(g, 0); err == nil {
		t.Fatal("corrupted segment opened without error")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Bookmark fetch reports the row as unavailable rather than wrong.
	if _, ok := tb.FetchRow(Locator{Group: g.ID, Tuple: 1}); ok {
		t.Fatal("fetch through corrupted segment succeeded")
	}
	// DML scans propagate the error.
	if _, err := tb.DeleteWhere(func(sqltypes.Row) bool { return true }); err == nil {
		t.Fatal("DeleteWhere over corrupted segment succeeded")
	}
	// Rebuild propagates too (no partial swap).
	groupsBefore := len(tb.Index().Groups())
	if err := tb.Rebuild(); err == nil {
		t.Fatal("Rebuild over corrupted segment succeeded")
	}
	if len(tb.Index().Groups()) != groupsBefore {
		t.Fatal("failed rebuild mutated the directory")
	}
	// The uncorrupted column is still readable.
	if _, err := snap.OpenColumn(g, 1); err != nil {
		t.Fatalf("clean column unreadable: %v", err)
	}
}

// Row-group boundaries: loads landing exactly on RowGroupSize multiples.
func TestExactRowGroupBoundaries(t *testing.T) {
	tb := newTable(t) // RowGroupSize 100, threshold 20
	if err := tb.BulkLoad(mkRows(300)); err != nil {
		t.Fatal(err)
	}
	st := tb.Stat()
	if st.CompressedGroups != 3 || st.DeltaRows != 0 {
		t.Fatalf("300 rows: %+v", st)
	}
	for _, g := range tb.Index().Groups() {
		if g.Rows != 100 {
			t.Fatalf("group rows = %d", g.Rows)
		}
	}
	// Trickle exactly to the boundary closes the store but the open store
	// stays empty until the next insert.
	tb2 := newTable(t)
	for i := 0; i < 100; i++ {
		if _, err := tb2.Insert(mkRow(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	tb2.mu.RLock()
	closed, openRows := len(tb2.closed), tb2.open.Rows()
	tb2.mu.RUnlock()
	if closed != 1 || openRows != 0 {
		t.Fatalf("boundary trickle: closed=%d open=%d", closed, openRows)
	}
	if err := tb2.MoveAll(); err != nil {
		t.Fatal(err)
	}
	if tb2.Rows() != 100 {
		t.Fatalf("Rows = %d", tb2.Rows())
	}
}

// A table whose every row is deleted still behaves: scans yield nothing,
// rebuild empties the directory, inserts work afterwards.
func TestFullyDeletedTable(t *testing.T) {
	tb := newTable(t)
	tb.BulkLoad(mkRows(150))
	n, err := tb.DeleteWhere(func(sqltypes.Row) bool { return true })
	if err != nil || n != 150 {
		t.Fatalf("deleted %d, %v", n, err)
	}
	if tb.Rows() != 0 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if got := collect(t, tb); len(got) != 0 {
		t.Fatalf("ghost rows: %v", got)
	}
	if err := tb.Rebuild(); err != nil {
		t.Fatal(err)
	}
	st := tb.Stat()
	if st.CompressedGroups != 0 || st.DeletedRows != 0 {
		t.Fatalf("after rebuild: %+v", st)
	}
	if _, err := tb.Insert(mkRow(1)); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 1 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}
