package table

import (
	"fmt"

	"apollo/internal/colstore"
	"apollo/internal/delta"
	"apollo/internal/wal"
)

// WAL replay. Recovery calls ReplayRecord for every logged mutation of this
// table, in log order, over either an empty table or a checkpoint image.
// Every handler is idempotent: a fuzzy checkpoint's image may already
// contain the effect of records that follow the checkpoint's replay point,
// so "already applied" must be indistinguishable from "applied now".
// Handlers never log.

// ReplayRecord applies one WAL record to the table.
func (t *Table) ReplayRecord(rec *wal.Record) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch rec.Type {
	case wal.TDeltaInsert:
		return t.replayInsertLocked(int(rec.A), rec.B, rec.Payload)
	case wal.TDeltaDelete:
		t.replayDeleteLocked(int(rec.A), rec.B)
	case wal.TDeleteSet:
		t.deletes.Delete(int(rec.A), int(rec.B))
	case wal.TDeltaClose:
		t.replayCloseLocked(int(rec.A), int(rec.B))
	case wal.TGroupPublish:
		return t.replayPublishLocked(int(rec.A), rec.Payload)
	case wal.TGroupRetire:
		t.idx.RemoveGroup(int(rec.A))
		t.deletes.DropGroup(int(rec.A))
	case wal.TDeltaDrop:
		t.replayDropLocked(int(rec.A))
	case wal.TTableReset:
		t.replayResetLocked(int(rec.A))
	default:
		return fmt.Errorf("table %s: replay of unexpected record %v", t.Name, rec.Type)
	}
	return nil
}

func (t *Table) replayInsertLocked(deltaID int, key uint64, enc []byte) error {
	s := t.deltaByIDLocked(deltaID)
	if s == nil {
		// The store was consumed by a later durable publish/drop whose effect
		// is already in the image; the row lives (or was deleted) there.
		return nil
	}
	s.RestoreRow(key, append([]byte(nil), enc...))
	t.deltaEpoch++
	return nil
}

func (t *Table) replayDeleteLocked(deltaID int, key uint64) {
	if s := t.deltaByIDLocked(deltaID); s != nil {
		s.RestoreDelete(key)
		t.deltaEpoch++
	}
}

// replayCloseLocked moves store closedID to the closed queue and opens a
// fresh store with id newID.
func (t *Table) replayCloseLocked(closedID, newID int) {
	if t.open == nil || t.open.ID != closedID {
		// Image already reflects the close (the open store has a later id).
		return
	}
	t.open.SetState(delta.Closed)
	t.closed = append(t.closed, t.open)
	if newID > t.deltaID {
		t.deltaID = newID
	}
	t.open = delta.NewStore(newID, t.Schema)
}

// replayPublishLocked installs a published row group and consumes its source
// delta store. The group's segment blobs are already present (write-through
// backing put them on disk before the record was logged).
func (t *Table) replayPublishLocked(consumed int, payload []byte) error {
	p, err := colstore.UnmarshalPublish(payload)
	if err != nil {
		return fmt.Errorf("table %s: %w", t.Name, err)
	}
	for _, da := range p.Dicts {
		d := t.idx.Primary(da.Col)
		if d == nil {
			return fmt.Errorf("table %s: dict append for non-string column %d", t.Name, da.Col)
		}
		// Add dedups by value, so entries the checkpoint image already holds
		// are no-ops and fresh entries get the next ids — which match the
		// original assignment because publishes replay in build order.
		for _, v := range da.Vals {
			d.Add(v)
		}
	}
	t.idx.RestoreGroup(p.Group)
	// Deletes that arrived while the mover compressed ride inside the publish
	// record (one atomic append); set their bitmap entries now that the group
	// exists. Idempotent: setting an already-set bit is a no-op.
	for _, tid := range p.Deletes {
		t.deletes.Delete(p.Group.ID, tid)
	}
	if consumed != 0 {
		t.replayDropLocked(consumed)
	}
	t.deltaEpoch++
	return nil
}

// replayDropLocked removes a delta store wholesale (consumed by a publish,
// or dropped empty by the mover).
func (t *Table) replayDropLocked(deltaID int) {
	for i, s := range t.closed {
		if s.ID == deltaID {
			t.closed = append(t.closed[:i], t.closed[i+1:]...)
			t.deltaEpoch++
			return
		}
	}
	if _, ok := t.moving[deltaID]; ok {
		delete(t.moving, deltaID)
		t.deltaEpoch++
	}
}

// replayResetLocked clears all delta state after a rebuild, opening a fresh
// store with the given id.
func (t *Table) replayResetLocked(newOpenID int) {
	if t.open != nil && t.open.ID >= newOpenID {
		// Image already reflects the reset.
		return
	}
	if newOpenID > t.deltaID {
		t.deltaID = newOpenID
	}
	t.open = delta.NewStore(newOpenID, t.Schema)
	t.closed = nil
	t.moving = make(map[int]*delta.Store)
	t.deltaEpoch++
}

// FinishRecovery normalizes post-replay state: any store left in Moving
// (crash mid-move, publish never logged) returns to Closed so the tuple
// mover can retry it; transactions still holding provisional effects (their
// TCommit never made the durable log) roll back; and with no snapshots alive
// at recovery, everything left settles.
func (t *Table) FinishRecovery() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.moving {
		s.SetState(delta.Closed)
		t.closed = append(t.closed, s)
	}
	t.moving = make(map[int]*delta.Store)
	for id := range t.txnPending {
		t.abortTxnLocked(id)
	}
	t.settleLocked()
}

// LiveBlobs records the blob ids reachable from the table's directory into
// keep (recovery's orphan-blob GC uses the union across tables).
func (t *Table) LiveBlobs(keep map[uint64]bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, g := range t.idx.Groups() {
		for i := range g.Segs {
			keep[uint64(g.Segs[i].Blob)] = true
			if g.Segs[i].LocalDict != 0 {
				keep[uint64(g.Segs[i].LocalDict)] = true
			}
		}
	}
}
