// Package degrade tracks a database's write-availability state through
// storage failures. Three modes form a one-way severity ladder with a single
// recoverable edge:
//
//	Healthy ──ENOSPC──▶ ReadOnly ──fsync failure──▶ Poisoned
//	   ▲                   │
//	   └──── auto-probe ────┘
//
// ReadOnly (disk full) keeps queries serving while DML, COPY, and
// checkpoints are refused with a typed ErrReadOnly; a background probe
// reclaims writability once space returns. Poisoned (a failed fsync
// anywhere on the durability path) is permanent until restart: a retried
// fsync can falsely succeed after the kernel drops dirty pages, so no
// commit may ever be acknowledged again (fsyncgate fail-stop).
package degrade

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
	"time"

	"apollo/internal/metrics"
	"apollo/internal/wal"
)

// Mode is the database's write-availability state.
type Mode int

// Modes, in increasing severity.
const (
	Healthy Mode = iota
	ReadOnly
	Poisoned
)

func (m Mode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case ReadOnly:
		return "read_only"
	case Poisoned:
		return "poisoned"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrReadOnly is matched (via errors.Is) by the error every write receives
// while the database is degraded to read-only by disk exhaustion. Reads
// keep working; writes succeed again once the auto-probe sees space return.
var ErrReadOnly = errors.New("degrade: database is read-only (disk full)")

// ReadOnlyError carries the ENOSPC failure that flipped the database
// read-only and when it happened.
type ReadOnlyError struct {
	Cause error
	Since time.Time
}

func (e *ReadOnlyError) Error() string {
	return fmt.Sprintf("degrade: database is read-only (disk full since %s): %v",
		e.Since.UTC().Format(time.RFC3339), e.Cause)
}

func (e *ReadOnlyError) Is(target error) bool { return target == ErrReadOnly }

func (e *ReadOnlyError) Unwrap() error { return e.Cause }

// IsNoSpace reports whether err was caused by disk exhaustion (real or
// injected; both wrap syscall.ENOSPC).
func IsNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }

var (
	mMode = metrics.Default.Gauge("apollo_degrade_mode",
		"database write-availability: 0 healthy, 1 read-only (disk full), 2 poisoned (fsync failure)")
	mReadOnlyEntered = metrics.Default.Counter("apollo_degrade_readonly_entered_total",
		"transitions into read-only mode on disk exhaustion")
	mRecovered = metrics.Default.Counter("apollo_degrade_recovered_total",
		"read-only periods ended by the write probe reclaiming space")
	mPoisonedC = metrics.Default.Counter("apollo_degrade_poisoned_total",
		"permanent fail-stop transitions after an fsync failure")
	mProbes = metrics.Default.Counter("apollo_degrade_probes_total",
		"write probes issued while read-only")
)

// Status is a snapshot of the degrade state.
type Status struct {
	Mode            Mode
	Cause           error     // failure that entered the current mode (nil when healthy)
	Since           time.Time // when the current mode was entered
	ReadOnlyEntered int64     // lifetime count of Healthy→ReadOnly transitions
	Recovered       int64     // lifetime count of ReadOnly→Healthy recoveries
}

// State is the write-availability state machine. The zero value is not
// usable; call New.
type State struct {
	mu       sync.Mutex
	mode     Mode
	cause    error
	since    time.Time
	entered  int64
	recov    int64
	probe    func() error
	interval time.Duration
	probing  bool          // a probe goroutine is running
	closed   bool
	stop     chan struct{} // closed by Close to stop any probe goroutine
}

// New returns a healthy state with no probe configured.
func New() *State {
	return &State{stop: make(chan struct{})}
}

// SetProbe installs the writability probe used to leave read-only mode. fn
// should attempt a small real write+fsync (and consult any armed fault
// injection) and return nil when writes would succeed. interval <= 0
// defaults to 500ms.
func (s *State) SetProbe(fn func() error, interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	s.mu.Lock()
	s.probe = fn
	s.interval = interval
	restart := s.mode == ReadOnly && !s.probing && !s.closed
	if restart {
		s.probing = true
	}
	s.mu.Unlock()
	if restart {
		go s.probeLoop()
	}
}

// CheckWrite returns nil when writes are allowed, a *ReadOnlyError while
// degraded by disk exhaustion, and the poison cause after fail-stop.
func (s *State) CheckWrite() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.mode {
	case ReadOnly:
		return &ReadOnlyError{Cause: s.cause, Since: s.since}
	case Poisoned:
		return s.cause
	default:
		return nil
	}
}

// Surface converts a write-path error into the typed rejection the caller
// should return, after the error has been Observed: the write that
// *discovers* disk exhaustion surfaces the same ReadOnlyError every
// subsequent gated write will see, instead of a raw ENOSPC that clients
// would have to classify themselves. Errors that didn't degrade the state
// pass through unchanged.
func (s *State) Surface(err error) error {
	if err == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode == ReadOnly && IsNoSpace(err) {
		return &ReadOnlyError{Cause: err, Since: s.since}
	}
	return err
}

// Mode returns the current mode.
func (s *State) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// Observe classifies a write-path error and transitions state: an fsync
// poison fail-stops, disk exhaustion enters read-only. Any other error
// (including nil) is a no-op — ordinary failures don't degrade the DB.
func (s *State) Observe(err error) {
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, wal.ErrPoisoned):
		s.Poison(err)
	case IsNoSpace(err):
		s.EnterReadOnly(err)
	}
}

// Poison fail-stops the database permanently (until restart). Overrides
// read-only; the first poison cause sticks.
func (s *State) Poison(cause error) {
	s.mu.Lock()
	if s.mode == Poisoned {
		s.mu.Unlock()
		return
	}
	s.mode = Poisoned
	s.cause = cause
	s.since = time.Now()
	s.mu.Unlock()
	mPoisonedC.Inc()
	mMode.Set(float64(Poisoned))
}

// EnterReadOnly degrades the database to read-only on disk exhaustion and
// starts the recovery probe (if configured). No-op when already read-only
// or poisoned.
func (s *State) EnterReadOnly(cause error) {
	s.mu.Lock()
	if s.mode != Healthy {
		s.mu.Unlock()
		return
	}
	s.mode = ReadOnly
	s.cause = cause
	s.since = time.Now()
	s.entered++
	startProbe := s.probe != nil && !s.probing && !s.closed
	if startProbe {
		s.probing = true
	}
	s.mu.Unlock()
	mReadOnlyEntered.Inc()
	mMode.Set(float64(ReadOnly))
	if startProbe {
		go s.probeLoop()
	}
}

// probeLoop periodically retries the write probe while read-only and flips
// the state back to healthy on the first success. It exits when the state
// leaves ReadOnly (recovery, poison, or Close).
func (s *State) probeLoop() {
	s.mu.Lock()
	interval := s.interval
	s.mu.Unlock()
	t := time.NewTicker(interval)
	defer t.Stop()
	defer func() {
		s.mu.Lock()
		s.probing = false
		s.mu.Unlock()
	}()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		if s.mode != ReadOnly || s.closed {
			s.mu.Unlock()
			return
		}
		probe := s.probe
		s.mu.Unlock()
		mProbes.Inc()
		if probe() != nil {
			continue // still failing; stay read-only
		}
		s.mu.Lock()
		if s.mode == ReadOnly {
			s.mode = Healthy
			s.cause = nil
			s.since = time.Now()
			s.recov++
			mRecovered.Inc()
			mMode.Set(float64(Healthy))
		}
		s.mu.Unlock()
		return
	}
}

// Snapshot returns the current status.
func (s *State) Snapshot() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{Mode: s.mode, Cause: s.cause, Since: s.since, ReadOnlyEntered: s.entered, Recovered: s.recov}
}

// Close stops the probe goroutine. The state itself stays readable.
func (s *State) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
	s.mu.Unlock()
}
