package degrade

import (
	"errors"
	"fmt"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"apollo/internal/wal"
)

func TestHealthyAllowsWrites(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.CheckWrite(); err != nil {
		t.Fatalf("healthy CheckWrite: %v", err)
	}
	if s.Mode() != Healthy {
		t.Fatalf("mode %v, want Healthy", s.Mode())
	}
}

func TestENOSPCEntersReadOnlyAndProbeRecovers(t *testing.T) {
	s := New()
	defer s.Close()
	var full atomic.Bool
	full.Store(true)
	s.SetProbe(func() error {
		if full.Load() {
			return fmt.Errorf("probe: %w", syscall.ENOSPC)
		}
		return nil
	}, time.Millisecond)

	s.Observe(fmt.Errorf("append: %w", syscall.ENOSPC))
	err := s.CheckWrite()
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("CheckWrite while full: got %v, want ErrReadOnly", err)
	}
	var roe *ReadOnlyError
	if !errors.As(err, &roe) {
		t.Fatalf("CheckWrite error %v is not a *ReadOnlyError", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ReadOnlyError does not unwrap to ENOSPC: %v", err)
	}

	// Stays read-only while the probe keeps failing.
	time.Sleep(20 * time.Millisecond)
	if s.Mode() != ReadOnly {
		t.Fatalf("mode %v while probe failing, want ReadOnly", s.Mode())
	}

	// Free space; the probe flips it back.
	full.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for s.Mode() != Healthy {
		if time.Now().After(deadline) {
			t.Fatal("state never recovered after probe success")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.CheckWrite(); err != nil {
		t.Fatalf("CheckWrite after recovery: %v", err)
	}
	st := s.Snapshot()
	if st.ReadOnlyEntered != 1 || st.Recovered != 1 {
		t.Fatalf("transition counts entered=%d recovered=%d, want 1/1", st.ReadOnlyEntered, st.Recovered)
	}
}

func TestPoisonIsPermanentAndOverridesReadOnly(t *testing.T) {
	s := New()
	defer s.Close()
	s.SetProbe(func() error { return nil }, time.Millisecond)

	s.EnterReadOnly(fmt.Errorf("blob put: %w", syscall.ENOSPC))
	cause := &wal.PoisonedError{Cause: errors.New("fsync EIO")}
	s.Observe(cause)
	if s.Mode() != Poisoned {
		t.Fatalf("mode %v after poison, want Poisoned", s.Mode())
	}
	err := s.CheckWrite()
	if !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("CheckWrite after poison: got %v, want ErrPoisoned", err)
	}
	// The always-succeeding probe must NOT recover a poisoned state.
	time.Sleep(20 * time.Millisecond)
	if s.Mode() != Poisoned {
		t.Fatalf("probe recovered a poisoned state: mode %v", s.Mode())
	}
}

func TestObserveIgnoresOrdinaryErrors(t *testing.T) {
	s := New()
	defer s.Close()
	s.Observe(nil)
	s.Observe(errors.New("syntax error"))
	s.Observe(errors.New("write conflict"))
	if s.Mode() != Healthy {
		t.Fatalf("ordinary errors degraded the state: mode %v", s.Mode())
	}
}

func TestProbeInstalledAfterDegradeStillRecovers(t *testing.T) {
	s := New()
	defer s.Close()
	s.EnterReadOnly(fmt.Errorf("x: %w", syscall.ENOSPC))
	// Probe configured only after the degrade: SetProbe must start it.
	s.SetProbe(func() error { return nil }, time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for s.Mode() != Healthy {
		if time.Now().After(deadline) {
			t.Fatal("late-installed probe never recovered the state")
		}
		time.Sleep(time.Millisecond)
	}
}
