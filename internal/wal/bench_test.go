package wal

import (
	"fmt"
	"testing"
	"time"
)

// Append throughput under each fsync policy, serial and with concurrent
// appenders sharing group commits. Record BENCH_wal.json from these.
func BenchmarkAppend(b *testing.B) {
	for _, policy := range []Policy{FsyncAlways, FsyncInterval, FsyncOff} {
		b.Run(fmt.Sprintf("fsync=%s", policy), func(b *testing.B) {
			w, err := Create(b.TempDir(), 1, Options{Policy: policy, Interval: time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			rec := &Record{Type: TDeltaInsert, Table: "bench", A: 1, B: 2, Payload: make([]byte, 100)}
			b.SetBytes(int64(len(rec.AppendBody(nil))) + frameHeadLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAppendParallel(b *testing.B) {
	for _, policy := range []Policy{FsyncAlways, FsyncInterval, FsyncOff} {
		b.Run(fmt.Sprintf("fsync=%s", policy), func(b *testing.B) {
			w, err := Create(b.TempDir(), 1, Options{Policy: policy, Interval: time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rec := &Record{Type: TDeltaInsert, Table: "bench", A: 1, B: 2, Payload: make([]byte, 100)}
				for pb.Next() {
					if err := w.Append(rec); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
