package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrCorrupt is the sentinel for unrecoverable log damage: a frame that fails
// validation anywhere other than the writable tail of the final segment.
// Damage at the tail is the expected signature of a torn write and is
// truncated silently; damage followed by more log data means the at-rest
// bytes are wrong and replaying past it would apply a different history than
// the one that was committed.
var ErrCorrupt = errors.New("wal: corrupt log")

// CorruptError reports where the log is damaged. errors.Is(err, ErrCorrupt)
// matches it.
type CorruptError struct {
	Seg    uint64 // damaged segment sequence
	Offset int64  // byte offset of the bad frame within the segment
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log: segment %d offset %d: %s", e.Seg, e.Offset, e.Reason)
}

// Is reports whether target is the ErrCorrupt sentinel.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// ScanResult summarizes a recovery scan.
type ScanResult struct {
	Records   int64  // valid records delivered to the callback
	LastSeq   uint64 // highest segment sequence seen (fromSeq-1 if none)
	Truncated bool   // a torn tail was found (and repaired when repair=true)
}

// Scan replays every record in dir's segments with sequence >= fromSeq, in
// order, calling fn for each. The torn-tail rule: a frame that is short,
// oversized, or CRC-damaged at the very end of the final segment is treated
// as an interrupted append — the tail is dropped (and physically truncated
// when repair is true, so a later recovery does not misread it as mid-file
// damage). The same damage anywhere else returns a *CorruptError wrapping
// ErrCorrupt. fn returning an error aborts the scan.
func Scan(dir string, fromSeq uint64, repair bool, fn func(seq uint64, rec *Record) error) (ScanResult, error) {
	res := ScanResult{}
	if fromSeq > 0 {
		res.LastSeq = fromSeq - 1
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return res, fmt.Errorf("wal: list segments: %w", err)
	}
	var scan []uint64
	for _, s := range seqs {
		if s >= fromSeq {
			scan = append(scan, s)
		}
	}
	// The writer numbers segments consecutively and checkpoint truncation only
	// removes a prefix, so the replay range must be gap-free and — when a
	// checkpoint set fromSeq — start exactly there (the rotate that produced
	// the image created segment fromSeq). A hole means committed records are
	// gone; replaying around it would silently recover a different history.
	if len(scan) > 0 && fromSeq > 0 && scan[0] != fromSeq {
		return res, &CorruptError{Seg: fromSeq, Offset: 0,
			Reason: fmt.Sprintf("log starts at segment %d, want %d (missing segments)", scan[0], fromSeq)}
	}
	for i, seq := range scan {
		if i > 0 && seq != scan[i-1]+1 {
			return res, &CorruptError{Seg: scan[i-1] + 1, Offset: 0,
				Reason: fmt.Sprintf("segment gap: %d followed by %d", scan[i-1], seq)}
		}
		last := i == len(scan)-1
		if seq > res.LastSeq {
			res.LastSeq = seq
		}
		if err := scanSegment(dir, seq, last, repair, &res, fn); err != nil {
			return res, err
		}
	}
	return res, nil
}

// VerifySegments checksum-verifies every closed segment in dir with sequence
// below `below` (the writer's current segment) without replaying records
// into the engine. The integrity scrubber calls it off the query path.
// Closed segments end on a frame boundary, so any tail damage is real
// corruption, not a torn write. Segments deleted mid-walk by a concurrent
// checkpoint truncation are skipped. Returns the number of segments and
// records verified; the first corruption aborts with a *CorruptError.
func VerifySegments(dir string, below uint64) (segments int, records int64, err error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: list segments: %w", err)
	}
	for _, seq := range seqs {
		if seq >= below {
			continue
		}
		res := ScanResult{}
		err := scanSegment(dir, seq, false, false, &res, func(uint64, *Record) error { return nil })
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // truncated away by a concurrent checkpoint
			}
			return segments, records, err
		}
		segments++
		records += res.Records
	}
	return segments, records, nil
}

// scanSegment replays one segment file. last marks the final segment, where
// tail damage is torn-write truncation rather than corruption.
func scanSegment(dir string, seq uint64, last, repair bool, res *ScanResult, fn func(uint64, *Record) error) error {
	path := filepath.Join(dir, SegmentName(seq))
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: read segment %d: %w", seq, err)
	}
	size := int64(len(buf))

	// torn reports tail damage: truncate (physically when repair) and stop.
	torn := func(goodEnd int64, reason string) error {
		if !last {
			return &CorruptError{Seg: seq, Offset: goodEnd, Reason: reason}
		}
		res.Truncated = true
		mTruncatedTail.Inc()
		if repair {
			if err := os.Truncate(path, goodEnd); err != nil {
				return fmt.Errorf("wal: truncate torn tail of segment %d: %w", seq, err)
			}
		}
		return nil
	}

	if size < segHeaderLen {
		return torn(0, "short segment header")
	}
	if string(buf[:8]) != segMagic {
		return &CorruptError{Seg: seq, Offset: 0, Reason: "bad segment magic"}
	}
	if got := binary.LittleEndian.Uint64(buf[8:16]); got != seq {
		return &CorruptError{Seg: seq, Offset: 8, Reason: fmt.Sprintf("segment header seq %d, want %d", got, seq)}
	}

	off := int64(segHeaderLen)
	for off < size {
		if off+frameHeadLen > size {
			return torn(off, "short frame header")
		}
		blen := int64(binary.LittleEndian.Uint32(buf[off:]))
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if blen <= 0 || blen > MaxRecordBytes {
			// A garbage length gives no trustworthy frame boundary, so
			// nothing after it can be parsed either way; at the tail of the
			// final segment it is the signature of a torn length prefix.
			return torn(off, fmt.Sprintf("invalid frame length %d", blen))
		}
		end := off + frameHeadLen + blen
		if end > size {
			return torn(off, "frame extends past end of segment")
		}
		body := buf[off+frameHeadLen : end]
		atTail := last && end == size
		if crc32.Checksum(body, castagnoli) != crc {
			if atTail {
				return torn(off, "crc mismatch in final frame")
			}
			return &CorruptError{Seg: seq, Offset: off, Reason: "crc mismatch"}
		}
		rec, err := UnmarshalRecord(body)
		if err != nil {
			// The CRC matched, so the body is what was written; a parse
			// failure means a framing bug or version skew, not a torn write.
			return &CorruptError{Seg: seq, Offset: off, Reason: err.Error()}
		}
		if err := fn(seq, rec); err != nil {
			return err
		}
		res.Records++
		off = end
	}
	return nil
}
