// Package crashtest is the crash-injection harness for durability testing.
// A parent test re-executes its own test binary as a child process that runs
// a deterministic scripted workload against a durable database with a WAL
// crash point armed (wal.Options.CrashAt): at a chosen byte offset the
// writer flushes a partial frame and kills the process, simulating a power
// cut mid-write. The parent then recovers the directory and verifies the
// committed-prefix property: the recovered state equals the state after
// exactly K workload operations for some K — no holes, no partial
// operations — and under fsync=always, K covers every operation the child
// acknowledged before dying.
//
// Environment protocol (set by the parent, read by RunChild):
//
//	APOLLO_CRASH_CHILD=1     marks the child (TestMain dispatches to RunChild)
//	APOLLO_CRASH_DIR=...     database directory
//	APOLLO_CRASH_AT=N        WAL byte offset to crash at (0 = run to completion)
//	APOLLO_CRASH_FSYNC=...   fsync policy: always, interval, off
//	APOLLO_CRASH_MIDCKPT=1   die right after the checkpoint image is durable,
//	                         before the checkpoint-end record
//	APOLLO_CRASH_BULK=1      run the bulk-load workload instead of the script
//	                         (see the bulk-load mode comment below)
package crashtest

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"apollo"
	"apollo/internal/persist"
)

// Op is one scripted workload operation.
type Op struct {
	Kind string // "insert", "delete", "flush", "checkpoint"
	ID   int64  // insert/delete operand
}

// Script is the deterministic workload both the child executes and the
// parent simulates. Phases: trickle inserts (small row groups force delta
// closes and moves), deletes against both delta and compressed rows, an
// explicit flush, a mid-workload checkpoint, then a second wave of inserts
// and deletes so kill points land after the checkpoint too.
func Script() []Op {
	var ops []Op
	for i := int64(1); i <= 40; i++ {
		ops = append(ops, Op{Kind: "insert", ID: i})
	}
	ops = append(ops, Op{Kind: "flush"})
	for i := int64(2); i <= 20; i += 3 {
		ops = append(ops, Op{Kind: "delete", ID: i})
	}
	ops = append(ops, Op{Kind: "checkpoint"})
	for i := int64(41); i <= 70; i++ {
		ops = append(ops, Op{Kind: "insert", ID: i})
	}
	for i := int64(50); i <= 60; i += 2 {
		ops = append(ops, Op{Kind: "delete", ID: i})
	}
	ops = append(ops, Op{Kind: "flush"})
	for i := int64(71); i <= 80; i++ {
		ops = append(ops, Op{Kind: "insert", ID: i})
	}
	return ops
}

// Config returns the database configuration the harness uses: tiny row
// groups so the workload exercises delta close, tuple moves, and compressed
// groups; manual tuple mover so the op sequence is deterministic.
func Config(fsyncPolicy string) apollo.Config {
	cfg := apollo.DefaultConfig()
	cfg.TupleMoverInterval = 0
	cfg.RowGroupSize = 16
	cfg.BulkLoadThreshold = 1 << 20 // keep everything on the trickle path
	cfg.FsyncPolicy = fsyncPolicy
	return cfg
}

// Apply runs one op against db. Flushes and checkpoints are state-neutral;
// inserts and deletes change the logical table.
func Apply(db *apollo.DB, op Op) error {
	switch op.Kind {
	case "insert":
		t, err := db.Table("k")
		if err != nil {
			return err
		}
		return t.Insert(apollo.Row{apollo.NewInt(op.ID), apollo.NewString(fmt.Sprintf("v-%d", op.ID))})
	case "delete":
		_, err := db.Exec(fmt.Sprintf("DELETE FROM k WHERE id = %d", op.ID))
		return err
	case "flush":
		t, err := db.Table("k")
		if err != nil {
			return err
		}
		return t.Reorganize()
	case "checkpoint":
		if !db.Durable() {
			return nil
		}
		_, err := db.Checkpoint()
		return err
	default:
		return fmt.Errorf("crashtest: unknown op %q", op.Kind)
	}
}

// Checksum fingerprints the table's logical contents: SHA-256 over the
// sorted (id, v) pairs. Physical layout (delta vs compressed, group count)
// does not affect it.
func Checksum(db *apollo.DB) ([32]byte, int, error) {
	res, err := db.Query("SELECT id, v FROM k")
	if err != nil {
		return [32]byte{}, 0, err
	}
	type kv struct {
		id int64
		v  string
	}
	rows := make([]kv, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, kv{r[0].I, r[1].S})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	h := sha256.New()
	for _, r := range rows {
		var idb [8]byte
		binary.LittleEndian.PutUint64(idb[:], uint64(r.id))
		h.Write(idb[:])
		h.Write([]byte(r.v))
		h.Write([]byte{0})
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, len(rows), nil
}

// ExpectedChecksums simulates the script on an in-memory database and
// returns the logical checksum after each prefix: out[k] is the state after
// the first k operations (out[0] = empty table).
func ExpectedChecksums(fsyncPolicy string) ([][32]byte, error) {
	cfg := Config(fsyncPolicy)
	db := apollo.Open(cfg)
	defer db.Close() //nolint:synccheck // test harness: child exits or durable state already recorded
	if _, err := db.Exec("CREATE TABLE k (id BIGINT, v VARCHAR)"); err != nil {
		return nil, err
	}
	script := Script()
	out := make([][32]byte, 0, len(script)+1)
	sum, _, err := Checksum(db)
	if err != nil {
		return nil, err
	}
	out = append(out, sum)
	for _, op := range script {
		if op.Kind == "checkpoint" {
			// no-op in-memory; keep indexes aligned
			out = append(out, out[len(out)-1])
			continue
		}
		if err := Apply(db, op); err != nil {
			return nil, err
		}
		if sum, _, err = Checksum(db); err != nil {
			return nil, err
		}
		out = append(out, sum)
	}
	return out, nil
}

// progressPath is the file where the child records acknowledged progress.
func progressPath(dir string) string { return filepath.Join(dir, "progress") }

// totalPath is where a crash-free child records the final WAL byte count.
func totalPath(dir string) string { return filepath.Join(dir, "wal-total") }

// ReadProgress returns how many operations the child acknowledged (the
// count it durably recorded before the crash).
func ReadProgress(dir string) (int, error) {
	b, err := os.ReadFile(progressPath(dir))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(b))
}

// ReadWALTotal returns the total WAL bytes a crash-free run wrote.
func ReadWALTotal(dir string) (int64, error) {
	b, err := os.ReadFile(totalPath(dir))
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(string(b), 10, 64)
}

// markProgress durably records that ops 0..n-1 are acknowledged.
func markProgress(dir string, n int) error {
	f, err := os.OpenFile(progressPath(dir)+".tmp", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.WriteString(strconv.Itoa(n)); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(progressPath(dir)+".tmp", progressPath(dir))
}

// IsChild reports whether this process is a harness child.
func IsChild() bool { return os.Getenv("APOLLO_CRASH_CHILD") == "1" }

// RunChild executes the scripted workload per the environment protocol and
// exits: code 0 on completion, code 3 when the armed crash point fires (the
// WAL writer calls os.Exit(3)), code 1 on unexpected errors. Call from
// TestMain before m.Run when IsChild().
func RunChild() {
	dir := os.Getenv("APOLLO_CRASH_DIR")
	crashAt, _ := strconv.ParseInt(os.Getenv("APOLLO_CRASH_AT"), 10, 64)
	policy := os.Getenv("APOLLO_CRASH_FSYNC")
	if policy == "" {
		policy = "always"
	}
	cfg := Config(policy)
	bulk := os.Getenv("APOLLO_CRASH_BULK") == "1"
	if bulk {
		cfg = BulkConfig(policy)
	}
	cfg.WALCrashAt = crashAt
	if os.Getenv("APOLLO_CRASH_MIDCKPT") == "1" {
		persist.TestHookAfterImage = func() { os.Exit(3) }
	}
	multi, _ := strconv.Atoi(os.Getenv("APOLLO_CRASH_MULTI"))
	if multi > 0 {
		// Multi-writer runs are nondeterministic anyway, so run the tuple
		// mover aggressively to put moves under the crash point too.
		cfg.TupleMoverInterval = 2 * time.Millisecond
	}
	enospc := os.Getenv("APOLLO_CRASH_ENOSPC") == "1"
	poison := os.Getenv("APOLLO_CRASH_POISON") == "1"
	if enospc {
		// The degrade/recover cycle must complete inside the child's
		// lifetime, so probe aggressively.
		cfg.ProbeInterval = 5 * time.Millisecond
	}
	db, err := apollo.OpenDir(dir, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtest child: open: %v\n", err)
		os.Exit(1)
	}
	if bulk {
		runBulkChild(db, dir) // never returns
	}
	if multi > 0 {
		runMultiChild(db, dir, multi) // never returns
	}
	if enospc {
		runEnospcChild(db, dir) // never returns
	}
	if poison {
		runPoisonChild(db, dir) // never returns
	}
	if _, err := db.Exec("CREATE TABLE k (id BIGINT, v VARCHAR)"); err != nil {
		fmt.Fprintf(os.Stderr, "crashtest child: create: %v\n", err)
		os.Exit(1)
	}
	for i, op := range Script() {
		if err := Apply(db, op); err != nil {
			fmt.Fprintf(os.Stderr, "crashtest child: op %d (%s %d): %v\n", i, op.Kind, op.ID, err)
			os.Exit(1)
		}
		if err := markProgress(dir, i+1); err != nil {
			fmt.Fprintf(os.Stderr, "crashtest child: progress: %v\n", err)
			os.Exit(1)
		}
	}
	total := db.WALStats().TotalBytes
	db.Close() //nolint:synccheck // test harness: child exits or durable state already recorded
	if err := os.WriteFile(totalPath(dir), []byte(strconv.FormatInt(total, 10)), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "crashtest child: total: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Multi-writer mode: N concurrent sessions run snapshot-isolation
// transactions against two tables while a WAL crash point is armed. Unlike
// the scripted single-writer mode the interleaving is nondeterministic, so
// the parent verifies invariants rather than prefix checksums:
//
//   - table mw (sess, txid, part): each transaction inserts parts {0,1,2}
//     for its (sess, txid) — a committed group has exactly 3 rows, never 1
//     or 2 (no torn transactions).
//   - table ctr (id, n): 4 seeded rows; each transaction increments one,
//     so sum(n) equals the number of committed mw groups (cross-table
//     atomicity) and contention on the 4 rows exercises first-writer-wins
//     conflicts and retries.
//   - transactions with txid%5 == 4 roll back deliberately and must never
//     surface.
//   - the child appends "sess txid" to an ack file only after Commit
//     returns; under fsync=always every acked group must survive recovery.
//
// Extra environment (on top of the protocol above):
//
//	APOLLO_CRASH_MULTI=N     run N concurrent sessions instead of the script

// MultiSetupOps is the number of autocommit setup statements the multi-writer
// child runs before transactions start (CREATE TABLE x2 + 4 counter seeds).
const MultiSetupOps = 6

// multiCap bounds each session's transaction count so crash-free runs
// terminate; it is high enough that armed crash points fire long before.
const multiCap = 150

func ackPath(dir string) string        { return filepath.Join(dir, "acks") }
func setupBytesPath(dir string) string { return filepath.Join(dir, "setup-bytes") }

// Ack is one acknowledged commit: the child wrote it after Commit returned.
type Ack struct{ Sess, Txid int64 }

// ReadAcks returns the commits the child acknowledged before dying. A torn
// final line (crash mid-append) is skipped.
func ReadAcks(dir string) ([]Ack, error) {
	b, err := os.ReadFile(ackPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var acks []Ack
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		var a Ack
		if _, err := fmt.Sscanf(line, "%d %d", &a.Sess, &a.Txid); err != nil {
			continue // torn tail
		}
		acks = append(acks, a)
	}
	return acks, nil
}

// ReadSetupBytes returns the WAL byte count after the multi-writer child's
// setup statements, recorded by a crash-free run; crash points must land
// above it so the tables exist in every recovered state.
func ReadSetupBytes(dir string) (int64, error) {
	b, err := os.ReadFile(setupBytesPath(dir))
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(string(b), 10, 64)
}

// runMultiChild is the multi-writer child body: see the mode comment above.
func runMultiChild(db *apollo.DB, dir string, sessions int) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "crashtest multi child: "+format+"\n", args...)
		os.Exit(1)
	}
	for _, stmt := range []string{
		"CREATE TABLE mw (sess BIGINT, txid BIGINT, part BIGINT)",
		"CREATE TABLE ctr (id BIGINT, n BIGINT)",
		"INSERT INTO ctr VALUES (0, 0)",
		"INSERT INTO ctr VALUES (1, 0)",
		"INSERT INTO ctr VALUES (2, 0)",
		"INSERT INTO ctr VALUES (3, 0)",
	} {
		if _, err := db.Exec(stmt); err != nil {
			fail("setup %q: %v", stmt, err)
		}
	}
	setupBytes := db.WALStats().TotalBytes
	if err := os.WriteFile(setupBytesPath(dir)+".tmp", []byte(strconv.FormatInt(setupBytes, 10)), 0o644); err != nil {
		fail("setup bytes: %v", err)
	}
	if err := os.Rename(setupBytesPath(dir)+".tmp", setupBytesPath(dir)); err != nil {
		fail("setup bytes: %v", err)
	}

	ackF, err := os.OpenFile(ackPath(dir), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		fail("ack file: %v", err)
	}
	var ackMu sync.Mutex
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(s*7919 + 1))
			for txid := int64(0); txid < multiCap; txid++ {
			retry:
				tx, err := db.Begin(ctx)
				if err != nil {
					errCh <- fmt.Errorf("session %d begin: %w", s, err)
					return
				}
				for part := int64(0); part < 3; part++ {
					if _, err := tx.Exec(fmt.Sprintf(
						"INSERT INTO mw VALUES (%d, %d, %d)", s, txid, part)); err != nil {
						errCh <- fmt.Errorf("session %d insert: %w", s, err)
						return
					}
				}
				// Contended increment: first-writer-wins may abort us; retry
				// the whole transaction from Begin.
				if _, err := tx.Exec(fmt.Sprintf(
					"UPDATE ctr SET n = n + 1 WHERE id = %d", rng.Intn(4))); err != nil {
					if errors.Is(err, apollo.ErrWriteConflict) {
						goto retry
					}
					errCh <- fmt.Errorf("session %d update: %w", s, err)
					return
				}
				if txid%5 == 4 {
					if err := tx.Rollback(ctx); err != nil {
						errCh <- fmt.Errorf("session %d rollback: %w", s, err)
						return
					}
					continue
				}
				if err := tx.Commit(ctx); err != nil {
					errCh <- fmt.Errorf("session %d commit: %w", s, err)
					return
				}
				// Commit returned: under fsync=always the TCommit is durable,
				// so acknowledge it. The ack itself is fsynced so the oracle
				// only ever under-counts acknowledged commits, never invents.
				ackMu.Lock()
				_, werr := fmt.Fprintf(ackF, "%d %d\n", s, txid)
				if werr == nil {
					werr = ackF.Sync()
				}
				ackMu.Unlock()
				if werr != nil {
					errCh <- fmt.Errorf("session %d ack: %w", s, werr)
					return
				}
			}
		}(int64(s))
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		fail("%v", err)
	}
	if err := ackF.Close(); err != nil {
		fail("ack close: %v", err)
	}
	total := db.WALStats().TotalBytes
	db.Close() //nolint:synccheck // test harness: child exits or durable state already recorded
	if err := os.WriteFile(totalPath(dir), []byte(strconv.FormatInt(total, 10)), 0o644); err != nil {
		fail("total: %v", err)
	}
	os.Exit(0)
}

// Bulk-load mode: the child drives db.Load (the COPY pipeline) instead of
// the trickle script, so crash points land inside atomic group publishes.
// The workload is deterministic in WAL bytes (fixed batch size pins the
// adaptive controller; serial column builds fix blob allocation order), so
// a crash-free baseline's WAL total gives the parent meaningful offsets:
//
//   - BulkRounds direct rounds load exactly BulkGroupRows rows each — at or
//     above the bulk threshold, so each round is one atomic TGroupPublish.
//     Recovery must show each round's group whole or not at all.
//   - BulkDeltaBatches fallback batches load BulkDeltaBatch rows each —
//     below the threshold, so they take the batched delta-insert path and
//     may legitimately survive partially (row granularity, in input order).
//   - ids are loaded in one contiguous ascending sequence, so the recovered
//     id set must be exactly [0, N) for some N (whole-group-or-none plus
//     ordered WAL replay leave no holes).
//   - markProgress acknowledges each completed unit (round or batch) only
//     after Load returns; under fsync=always every acknowledged unit must
//     survive recovery.
//
// Extra environment (on top of the protocol above):
//
//	APOLLO_CRASH_BULK=1      run the bulk-load workload instead of the script

// Bulk-load workload shape. BulkGroupRows is also the configured row-group
// size, so every direct round publishes exactly one full group.
const (
	BulkGroupRows    = 64 // rows per direct round == one published row group
	BulkRounds       = 12 // direct rounds (768 rows compressed)
	BulkDeltaBatch   = 24 // rows per fallback batch, below the threshold
	BulkDeltaBatches = 6  // fallback batches (144 delta rows)
)

// BulkUnits is the total number of acknowledged progress units.
const BulkUnits = BulkRounds + BulkDeltaBatches

// BulkRowsAfter returns how many rows exist after n completed units.
func BulkRowsAfter(n int) int {
	direct := n
	if direct > BulkRounds {
		direct = BulkRounds
	}
	delta := n - direct
	return direct*BulkGroupRows + delta*BulkDeltaBatch
}

// BulkConfig returns the database configuration for bulk-load crash runs:
// row groups sized to one direct round, a threshold between the two batch
// sizes so both ingest paths are exercised, and serial column builds so the
// WAL byte stream is identical across runs (parallel builds permute blob
// allocation order).
func BulkConfig(fsyncPolicy string) apollo.Config {
	cfg := apollo.DefaultConfig()
	cfg.TupleMoverInterval = 0
	cfg.RowGroupSize = BulkGroupRows
	cfg.BulkLoadThreshold = BulkDeltaBatch * 2
	cfg.Parallel = 1
	cfg.FsyncPolicy = fsyncPolicy
	return cfg
}

// runBulkChild is the bulk-load child body: see the mode comment above.
func runBulkChild(db *apollo.DB, dir string) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "crashtest bulk child: "+format+"\n", args...)
		os.Exit(1)
	}
	if _, err := db.Exec("CREATE TABLE bl (id BIGINT, v VARCHAR)"); err != nil {
		fail("create: %v", err)
	}
	setupBytes := db.WALStats().TotalBytes
	if err := os.WriteFile(setupBytesPath(dir)+".tmp", []byte(strconv.FormatInt(setupBytes, 10)), 0o644); err != nil {
		fail("setup bytes: %v", err)
	}
	if err := os.Rename(setupBytesPath(dir)+".tmp", setupBytesPath(dir)); err != nil {
		fail("setup bytes: %v", err)
	}

	ctx := context.Background()
	loadRange := func(lo, hi int64, batch int) *apollo.LoadResult {
		var sb strings.Builder
		for id := lo; id < hi; id++ {
			fmt.Fprintf(&sb, "%d,v-%d\n", id, id)
		}
		res, err := db.Load(ctx, apollo.LoadOptions{
			Table:     "bl",
			Format:    "csv",
			Reader:    strings.NewReader(sb.String()),
			BatchRows: batch, // fixed: keeps the flush sizes (and WAL) deterministic
		})
		if err != nil {
			fail("load [%d,%d): %v", lo, hi, err)
		}
		return res
	}

	unit := 0
	for r := 0; r < BulkRounds; r++ {
		lo := int64(r * BulkGroupRows)
		res := loadRange(lo, lo+BulkGroupRows, BulkGroupRows)
		if res.RowsDirect != BulkGroupRows || res.Groups != 1 {
			fail("round %d took the wrong path: %d direct in %d groups, want %d in 1",
				r, res.RowsDirect, res.Groups, BulkGroupRows)
		}
		unit++
		if err := markProgress(dir, unit); err != nil {
			fail("progress: %v", err)
		}
	}
	deltaBase := int64(BulkRounds * BulkGroupRows)
	for b := 0; b < BulkDeltaBatches; b++ {
		lo := deltaBase + int64(b*BulkDeltaBatch)
		res := loadRange(lo, lo+BulkDeltaBatch, BulkDeltaBatch)
		if res.RowsDelta != BulkDeltaBatch {
			fail("batch %d took the wrong path: %d delta, want %d", b, res.RowsDelta, BulkDeltaBatch)
		}
		unit++
		if err := markProgress(dir, unit); err != nil {
			fail("progress: %v", err)
		}
	}

	total := db.WALStats().TotalBytes
	db.Close() //nolint:synccheck // test harness: child exits or durable state already recorded
	if err := os.WriteFile(totalPath(dir), []byte(strconv.FormatInt(total, 10)), 0o644); err != nil {
		fail("total: %v", err)
	}
	os.Exit(0)
}

// --- ENOSPC / fsync-poison fail-stop modes ---
//
// Storage-failure hardening children (PR: fail-stop durability). Extra
// environment on top of the protocol above:
//
//	APOLLO_CRASH_ENOSPC=1   scripted disk-full degrade/recover workload
//	APOLLO_CRASH_POISON=1   scripted fsync-failure fail-stop workload
//
// Both modes insert sequential ids into table k and mark progress only
// after an acknowledged insert, so the parent's oracle is simple: the
// recovered table must hold EXACTLY the contiguous prefix 1..K for some
// K >= acked — zero acked loss, no false acks, no holes.

// EnospcAckedBefore is how many inserts the ENOSPC child acks before
// arming disk-full; EnospcTotal is the full run length after recovery.
const (
	EnospcAckedBefore = 20
	EnospcTotal       = 60
)

// insertK trickle-inserts one scripted row into table k.
func insertK(db *apollo.DB, id int64) error {
	t, err := db.Table("k")
	if err != nil {
		return err
	}
	return t.Insert(apollo.Row{apollo.NewInt(id), apollo.NewString(fmt.Sprintf("v-%d", id))})
}

// runEnospcChild scripts the disk-full degradation cycle: 20 acked inserts,
// deterministic ENOSPC armed on every further WAL append, a write that must
// be rejected with the typed read-only error (and NOT acked), reads that
// must keep working, then space "returns" and the auto-probe must restore
// writes without reopening the DB — continuing to 60 acked inserts. A WAL
// crash point may be armed on top, killing the child anywhere in that
// cycle; the parent's prefix oracle holds at every kill point.
func runEnospcChild(db *apollo.DB, dir string) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "crashtest enospc child: "+format+"\n", args...)
		os.Exit(1)
	}
	if _, err := db.Exec("CREATE TABLE k (id BIGINT, v VARCHAR)"); err != nil {
		fail("create: %v", err)
	}
	acked := 0
	for i := int64(1); i <= EnospcAckedBefore; i++ {
		if err := insertK(db, i); err != nil {
			fail("insert %d: %v", i, err)
		}
		acked++
		if err := markProgress(dir, acked); err != nil {
			fail("progress: %v", err)
		}
	}

	db.InjectWALFaults(apollo.WALFaults{AppendNoSpaceAt: 1})
	err := insertK(db, EnospcAckedBefore+1)
	if err == nil {
		fail("insert succeeded with disk full — false ack")
	}
	if !apollo.IsReadOnlyError(err) {
		fail("disk-full insert: got %v, want typed read-only error", err)
	}
	// Reads must keep working on the degraded database.
	res, err := db.Exec("SELECT COUNT(*) FROM k")
	if err != nil {
		fail("read while read-only: %v", err)
	}
	if n := res.Rows[0][0].I; n != EnospcAckedBefore {
		fail("read while read-only: count %d, want %d", n, EnospcAckedBefore)
	}

	// Space returns; the probe must flip writes back on without a reopen.
	db.ClearWALFaults()
	deadline := time.Now().Add(10 * time.Second)
	for i := int64(EnospcAckedBefore + 1); i <= EnospcTotal; i++ {
		for {
			err := insertK(db, i)
			if err == nil {
				break
			}
			if !apollo.IsReadOnlyError(err) {
				fail("insert %d during recovery: %v", i, err)
			}
			if time.Now().After(deadline) {
				fail("writes never recovered after clearing disk-full")
			}
			time.Sleep(2 * time.Millisecond)
		}
		acked++
		if err := markProgress(dir, acked); err != nil {
			fail("progress: %v", err)
		}
	}
	if h := db.Health(); h.Mode != apollo.ModeHealthy || h.Recovered < 1 {
		fail("health after recovery: mode %v recovered %d", h.Mode, h.Recovered)
	}
	total := db.WALStats().TotalBytes
	db.Close() //nolint:synccheck // test harness: child exits or durable state already recorded
	if err := os.WriteFile(totalPath(dir), []byte(strconv.FormatInt(total, 10)), 0o644); err != nil {
		fail("total: %v", err)
	}
	os.Exit(0)
}

// runPoisonChild scripts the fsync-failure fail-stop: 20 acked inserts,
// then the next fsync is forced to fail. The in-flight insert must be
// REJECTED (not acked) and the writer permanently poisoned: later writes
// fail fast with the typed poison error, clearing the injection does not
// revive them, and reads keep serving what is already durable. The parent
// then recovers the directory and verifies nothing acked was lost and the
// never-acked poisoned insert did not leak a false ack.
func runPoisonChild(db *apollo.DB, dir string) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "crashtest poison child: "+format+"\n", args...)
		os.Exit(1)
	}
	if _, err := db.Exec("CREATE TABLE k (id BIGINT, v VARCHAR)"); err != nil {
		fail("create: %v", err)
	}
	acked := 0
	for i := int64(1); i <= EnospcAckedBefore; i++ {
		if err := insertK(db, i); err != nil {
			fail("insert %d: %v", i, err)
		}
		acked++
		if err := markProgress(dir, acked); err != nil {
			fail("progress: %v", err)
		}
	}

	db.InjectWALFaults(apollo.WALFaults{FailSyncAt: 1})
	if err := insertK(db, EnospcAckedBefore+1); err == nil {
		fail("insert acked through a failed fsync")
	} else if !apollo.IsPoisonedError(err) {
		fail("failed-fsync insert: got %v, want typed poison error", err)
	}
	// Poison is permanent: the next write fails fast, and clearing the
	// injection must not revive the writer.
	db.ClearWALFaults()
	if err := insertK(db, EnospcAckedBefore+2); !apollo.IsPoisonedError(err) {
		fail("insert after poison: got %v, want typed poison error", err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM k")
	if err != nil {
		fail("read on poisoned db: %v", err)
	}
	if n := res.Rows[0][0].I; n != EnospcAckedBefore {
		fail("read on poisoned db: count %d, want %d", n, EnospcAckedBefore)
	}
	if h := db.Health(); h.Mode != apollo.ModePoisoned || !h.WAL.Poisoned {
		fail("health after poison: mode %v wal-poisoned %v", h.Mode, h.WAL.Poisoned)
	}
	db.Close() //nolint:synccheck // test harness: child exits or durable state already recorded
	os.Exit(0)
}

// VerifyContiguousPrefix checks the fail-stop oracle on a recovered
// database: table k holds exactly ids 1..K for some K (no holes, no
// duplicates, no phantoms beyond hi), with acked <= K <= hi. Returns K.
func VerifyContiguousPrefix(db *apollo.DB, acked, hi int) (int, error) {
	res, err := db.Exec("SELECT COUNT(*), MIN(id), MAX(id), COUNT(DISTINCT id) FROM k")
	if err != nil {
		return 0, err
	}
	count := res.Rows[0][0].I
	if count == 0 {
		if acked > 0 {
			return 0, fmt.Errorf("empty table after %d acked inserts", acked)
		}
		return 0, nil
	}
	minID := res.Rows[0][1].I
	maxID := res.Rows[0][2].I
	distinct := res.Rows[0][3].I
	if minID != 1 || maxID != count || distinct != count {
		return 0, fmt.Errorf("recovered ids are not a contiguous 1..K prefix: count=%d min=%d max=%d distinct=%d",
			count, minID, maxID, distinct)
	}
	k := int(count)
	if k < acked {
		return k, fmt.Errorf("acked loss: recovered prefix %d < acked %d", k, acked)
	}
	if k > hi {
		return k, fmt.Errorf("phantom rows: recovered prefix %d > maximum scripted %d", k, hi)
	}
	return k, nil
}
