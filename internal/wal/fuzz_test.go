package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the record decoder (it must never
// panic or over-read) and checks the round-trip invariant recovery depends
// on: every successfully decoded record re-encodes to a body that decodes to
// the same record, and the canonical encoding is a byte-level fixed point.
// (Byte identity with the input is not required — the decoder tolerates
// non-minimal uvarints that AppendBody would never produce.)
func FuzzWALRecord(f *testing.F) {
	seeds := []*Record{
		{Type: TCreateTable, Table: "orders", Payload: []byte{1, 2, 3}},
		{Type: TDeltaInsert, Table: "t", A: 3, B: 999, Payload: []byte("encoded-row")},
		{Type: TDeleteSet, Table: "a_longer_table_name", A: 1 << 40, B: 1<<63 - 1},
		{Type: TCheckpointEnd, A: 42},
		{Type: TDeltaInsert, Table: "t", A: 3, B: 7, Txn: 1<<63 | 5, Payload: []byte("row")},
		{Type: TCommit, Txn: 1<<63 | 5, A: 17},
	}
	for _, r := range seeds {
		f.Add(r.AppendBody(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		rec, err := UnmarshalRecord(body)
		if err != nil {
			return
		}
		again := rec.AppendBody(nil)
		rec2, err := UnmarshalRecord(again)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rec2.Type != rec.Type || rec2.Table != rec.Table || rec2.A != rec.A || rec2.B != rec.B || rec2.Txn != rec.Txn || !bytes.Equal(rec2.Payload, rec.Payload) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", rec2, rec)
		}
		if canon := rec2.AppendBody(nil); !bytes.Equal(canon, again) {
			t.Fatalf("canonical encoding not a fixed point:\n in: %x\nout: %x", again, canon)
		}
	})
}
