package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// ErrPoisoned is matched (via errors.Is) by every error a poisoned writer
// returns. A writer poisons itself permanently after any failed fsync:
// retrying an fsync is unsound — the kernel may have dropped the dirty pages
// on the first failure, so a retried call can report success for data that
// was never written (the "fsyncgate" failure mode). Once poisoned, the
// durable watermark never advances again, every pending and future
// WaitDurable fails, and Close skips its final sync.
var ErrPoisoned = errors.New("wal: writer poisoned by fsync failure")

// PoisonedError carries the fsync failure that poisoned the writer.
type PoisonedError struct {
	Cause error
}

func (e *PoisonedError) Error() string {
	return fmt.Sprintf("wal: writer poisoned by fsync failure: %v", e.Cause)
}

func (e *PoisonedError) Is(target error) bool { return target == ErrPoisoned }

func (e *PoisonedError) Unwrap() error { return e.Cause }

// NoSpaceError reports an append or segment-provisioning failure caused by
// disk exhaustion. Unlike an fsync failure it does not poison the writer:
// the torn frame is unwound, no unsynced data was acknowledged, and appends
// succeed again once space returns. Cause wraps syscall.ENOSPC, so
// errors.Is(err, syscall.ENOSPC) holds.
type NoSpaceError struct {
	Op    string
	Cause error
}

func (e *NoSpaceError) Error() string {
	return fmt.Sprintf("wal: %s: disk full: %v", e.Op, e.Cause)
}

func (e *NoSpaceError) Unwrap() error { return e.Cause }

// IsNoSpace reports whether err was caused by disk exhaustion.
func IsNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// Poison marks the writer permanently failed. The first call wins; the
// stored cause is returned (wrapped in a PoisonedError) by every subsequent
// operation. All WaitDurable waiters are woken so they observe the poison
// instead of blocking on a watermark that will never advance.
func (w *Writer) Poison(cause error) {
	pe := &PoisonedError{Cause: cause}
	if !w.poison.CompareAndSwap(nil, pe) {
		return
	}
	mPoisoned.Inc()
	w.broadcast()
	if w.opts.OnPoison != nil {
		w.opts.OnPoison(pe)
	}
}

// Poisoned returns the writer's poison error, or nil if it is healthy.
// Dir returns the segment directory (scrubber WAL-verification scope).
func (w *Writer) Dir() string { return w.dir }

func (w *Writer) Poisoned() error {
	if pe := w.poison.Load(); pe != nil {
		return pe
	}
	return nil
}

// errInjectedSync is the synthetic I/O error produced by SetFailSync.
var errInjectedSync = fmt.Errorf("injected fsync failure: %w", syscall.EIO)

// SetFailSync arms deterministic fsync-failure injection: the nth fsync
// issued from now (1 = the next) fails with a synthetic I/O error and
// poisons the writer. n = 0 disarms.
func (w *Writer) SetFailSync(n int64) { w.injSyncFail.Store(n) }

// SetAppendNoSpace arms deterministic disk-full injection: the nth record
// append from now (1 = the next) and every later one fail with an error
// wrapping syscall.ENOSPC, after a genuine partial write that exercises the
// same truncate-back unwind as a real short write. The injection stays
// armed — modelling a disk that remains full — until disarmed with n = 0.
func (w *Writer) SetAppendNoSpace(n int64) {
	w.mu.Lock()
	w.injNoSpaceIn = n
	w.mu.Unlock()
}

// maybeInjectSyncErr consumes one tick of the armed sync-failure counter,
// returning the synthetic error when the counter reaches its target.
func (w *Writer) maybeInjectSyncErr() error {
	for {
		n := w.injSyncFail.Load()
		switch {
		case n == 0:
			return nil
		case n == 1:
			if w.injSyncFail.CompareAndSwap(1, 0) {
				return errInjectedSync
			}
		default:
			if w.injSyncFail.CompareAndSwap(n, n-1) {
				return nil
			}
		}
	}
}

// errSegmentSealed reports that a group-commit fsync lost a benign race: a
// concurrent rotation sealed (fsynced, advanced the watermark past, and
// closed) the segment handle before the fsync ran. Nothing was lost —
// callers re-check the watermark instead of failing.
var errSegmentSealed = errors.New("wal: segment sealed by concurrent rotation")

// syncFile is the single chokepoint for fsyncing segment data. Any failure,
// real or injected, permanently poisons the writer (see ErrPoisoned): after
// a failed fsync the durable watermark must never advance again, so the
// only safe response is fail-stop. The one exception is ErrClosed from a
// handle a concurrent rotation already sealed — that fsync ran and
// succeeded, so errSegmentSealed is returned without poisoning.
func (w *Writer) syncFile(f *os.File) error {
	if err := w.Poisoned(); err != nil {
		return err
	}
	if err := w.maybeInjectSyncErr(); err != nil {
		w.Poison(err)
		return w.Poisoned()
	}
	if err := f.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			return errSegmentSealed
		}
		w.Poison(fmt.Errorf("wal: fsync segment: %w", err))
		return w.Poisoned()
	}
	mFsyncs.Inc()
	return nil
}

// WriteProbe reports whether the log can currently accept durable appends:
// a poisoned writer or armed disk-full injection fails immediately;
// otherwise a scratch file in the WAL directory is written, fsynced, and
// removed. The read-only auto-prober uses it to decide when writability has
// returned after an ENOSPC degrade.
func (w *Writer) WriteProbe() error {
	if err := w.Poisoned(); err != nil {
		return err
	}
	w.mu.Lock()
	armed := w.injNoSpaceIn == 1
	dir := w.dir
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return fmt.Errorf("wal: writer closed")
	}
	if armed {
		return &NoSpaceError{Op: "probe", Cause: syscall.ENOSPC}
	}
	path := filepath.Join(dir, ".write-probe")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("apollo-write-probe"))
	serr := f.Sync()
	cerr := f.Close()
	os.Remove(path)
	if werr != nil {
		return werr
	}
	if serr != nil {
		// A probe-file fsync failure does not poison: no acknowledged log
		// data depends on it. It just keeps the DB read-only.
		return serr
	}
	return cerr
}
