package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func mkRec(i int) *Record {
	return &Record{
		Type:    TDeltaInsert,
		Table:   "t",
		A:       uint64(i % 7),
		B:       uint64(i),
		Payload: []byte(fmt.Sprintf("row-%d", i)),
	}
}

func collect(t *testing.T, dir string, fromSeq uint64, repair bool) ([]*Record, ScanResult) {
	t.Helper()
	var recs []*Record
	res, err := Scan(dir, fromSeq, repair, func(_ uint64, r *Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return recs, res
}

func TestRoundTrip(t *testing.T) {
	for _, policy := range []Policy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Create(dir, 1, Options{Policy: policy, Interval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			const n = 100
			for i := 0; i < n; i++ {
				if err := w.Append(mkRec(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			recs, res := collect(t, dir, 1, false)
			if len(recs) != n {
				t.Fatalf("got %d records, want %d", len(recs), n)
			}
			if res.Truncated {
				t.Fatal("unexpected torn tail")
			}
			for i, r := range recs {
				want := mkRec(i)
				if r.Type != want.Type || r.Table != want.Table || r.A != want.A || r.B != want.B || !bytes.Equal(r.Payload, want.Payload) {
					t.Fatalf("record %d mismatch: got %+v want %+v", i, r, want)
				}
			}
		})
	}
}

func TestRecordRoundTripAllTypes(t *testing.T) {
	recs := []*Record{
		{Type: TCreateTable, Table: "orders", Payload: []byte{1, 2, 3}},
		{Type: TDropTable, Table: "orders"},
		{Type: TDeltaInsert, Table: "t", A: 3, B: 999, Payload: []byte("enc")},
		{Type: TDeltaDelete, Table: "t", A: 3, B: 999},
		{Type: TDeleteSet, Table: "t", A: 7, B: 12345},
		{Type: TDeltaClose, Table: "t", A: 1, B: 2},
		{Type: TGroupPublish, Table: "t", A: 4, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{Type: TGroupRetire, Table: "t", A: 9},
		{Type: TDeltaDrop, Table: "t", A: 5},
		{Type: TTableReset, Table: "t", A: 11},
		{Type: TCheckpointBegin, A: 42},
		{Type: TCheckpointEnd, A: 42},
	}
	for _, r := range recs {
		got, err := UnmarshalRecord(r.AppendBody(nil))
		if err != nil {
			t.Fatalf("%v: %v", r.Type, err)
		}
		if got.Type != r.Type || got.Table != r.Table || got.A != r.A || got.B != r.B || !bytes.Equal(got.Payload, r.Payload) {
			t.Fatalf("%v round trip: got %+v want %+v", r.Type, got, r)
		}
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	w, err := Create(dir, 1, Options{Policy: FsyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stat().Seq < 3 {
		t.Fatalf("expected rotation, still on segment %d", w.Stat().Seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 1, false)
	if len(recs) != n {
		t.Fatalf("got %d records across segments, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.B != uint64(i) {
			t.Fatalf("record %d out of order: B=%d", i, r.B)
		}
	}
}

func TestRemoveSegmentsBelow(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 120; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.RemoveSegmentsBelow(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seqs {
		if s < seq {
			t.Fatalf("segment %d survived RemoveSegmentsBelow(%d)", s, seq)
		}
	}
	recs, _ := collect(t, dir, seq, false)
	if len(recs) != 20 {
		t.Fatalf("got %d records after truncation, want 20", len(recs))
	}
	if recs[0].B != 100 {
		t.Fatalf("first surviving record B=%d, want 100", recs[0].B)
	}
}

// TestTornTail chops the final segment at every byte boundary inside its last
// frame and verifies the scan returns exactly the unchopped prefix, flags the
// tail, and (with repair) physically truncates so a second scan is clean.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	var sizes []int64 // file size after each append
	for i := 0; i < n; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, w.Stat().TotalBytes)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, SegmentName(1))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for cut := sizes[n-2] + 1; cut < sizes[n-1]; cut++ {
		work := t.TempDir()
		if err := os.WriteFile(filepath.Join(work, SegmentName(1)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, res := collect(t, work, 1, true)
		if len(recs) != n-1 {
			t.Fatalf("cut=%d: got %d records, want %d", cut, len(recs), n-1)
		}
		if !res.Truncated {
			t.Fatalf("cut=%d: torn tail not flagged", cut)
		}
		// Repair truncated the file; a second scan must be clean.
		recs2, res2 := collect(t, work, 1, false)
		if len(recs2) != n-1 || res2.Truncated {
			t.Fatalf("cut=%d: post-repair scan got %d records, truncated=%v", cut, len(recs2), res2.Truncated)
		}
		fi, err := os.Stat(filepath.Join(work, SegmentName(1)))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != sizes[n-2] {
			t.Fatalf("cut=%d: repaired size %d, want %d", cut, fi.Size(), sizes[n-2])
		}
	}
}

// TestCorruptMidFile flips a byte in a non-final frame: that is real damage,
// not a torn write, and must surface as ErrCorrupt.
func TestCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, SegmentName(1))
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[segHeaderLen+frameHeadLen+2] ^= 0x40 // inside the first frame's body
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Scan(dir, 1, true, func(uint64, *Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: got %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Seg != 1 {
		t.Fatalf("expected CorruptError naming segment 1, got %v", err)
	}
}

// TestCorruptEarlierSegment damages the tail of a NON-final segment: with a
// later segment present, that is mid-log damage, not a torn write.
func TestCorruptEarlierSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, SegmentName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	_, err = Scan(dir, 1, true, func(uint64, *Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged non-final segment: got %v, want ErrCorrupt", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncInterval, Interval: time.Millisecond, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Append(mkRec(g*per + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 1, false)
	if len(recs) != writers*per {
		t.Fatalf("got %d records, want %d", len(recs), writers*per)
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.B] {
			t.Fatalf("duplicate record B=%d", r.B)
		}
		seen[r.B] = true
	}
}

// TestGroupCommitWatermark: under FsyncAlways every acknowledged append is
// durable (SyncedBytes covers TotalBytes whenever the writer is idle).
func TestGroupCommitWatermark(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 50; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
		st := w.Stat()
		if st.SyncedBytes < st.TotalBytes {
			t.Fatalf("append %d acknowledged before durable: synced %d < total %d", i, st.SyncedBytes, st.TotalBytes)
		}
	}
}

func TestScanFromSeqSkipsOld(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		if err := w.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, dir, seq, false)
	if len(recs) != 3 || recs[0].B != 5 {
		t.Fatalf("scan from seq %d: got %d records starting at B=%v", seq, len(recs), recs)
	}
	if res.LastSeq != seq {
		t.Fatalf("LastSeq=%d, want %d", res.LastSeq, seq)
	}
}

// TestScanRejectsMissingSegments: a hole in the segment sequence (a deleted
// or lost file) means committed records are gone; the scan must surface
// ErrCorrupt, not silently replay around it.
func TestScanRejectsMissingSegments(t *testing.T) {
	mkLog := func(t *testing.T) string {
		dir := t.TempDir()
		w, err := Create(dir, 1, Options{Policy: FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		for seg := 0; seg < 3; seg++ {
			for i := 0; i < 5; i++ {
				if err := w.Append(mkRec(seg*5 + i)); err != nil {
					t.Fatal(err)
				}
			}
			if seg < 2 {
				if _, err := w.Rotate(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("gap-mid-log", func(t *testing.T) {
		dir := mkLog(t)
		if err := os.Remove(filepath.Join(dir, SegmentName(2))); err != nil {
			t.Fatal(err)
		}
		_, err := Scan(dir, 1, false, func(uint64, *Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("segment gap: got %v, want ErrCorrupt", err)
		}
	})
	t.Run("missing-checkpoint-segment", func(t *testing.T) {
		dir := mkLog(t)
		if err := os.Remove(filepath.Join(dir, SegmentName(1))); err != nil {
			t.Fatal(err)
		}
		// A checkpoint set fromSeq=1; the log starting at 2 means segment 1's
		// committed records are gone.
		_, err := Scan(dir, 1, false, func(uint64, *Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("missing first segment: got %v, want ErrCorrupt", err)
		}
	})
}

func TestEmptyDirScan(t *testing.T) {
	res, err := Scan(t.TempDir(), 0, true, func(uint64, *Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || res.LastSeq != 0 || res.Truncated {
		t.Fatalf("empty dir scan: %+v", res)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(&Record{Type: TDeltaInsert, Table: "t", Payload: make([]byte, MaxRecordBytes)}); err == nil {
		t.Fatal("oversize record accepted")
	}
	if err := w.Append(mkRec(1)); err != nil {
		t.Fatalf("writer unusable after oversize reject: %v", err)
	}
}

// TestWaitDurableSharesFsync forces the group-commit path deterministically:
// with the sync token held, N appenders all block in WaitDurable; releasing
// the token lets exactly one of them fsync, and that single fsync must cover
// every waiter. This is the cross-session group commit — N commits, one
// fsync — without depending on scheduler timing.
func TestWaitDurableSharesFsync(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	w.syncSem <- struct{}{} // hold the sync token: waiters must queue

	const waiters = 16
	var ready sync.WaitGroup
	var done sync.WaitGroup
	before := mFsyncs.Value()
	for i := 0; i < waiters; i++ {
		ready.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			target, err := w.AppendAsync(mkRec(i))
			ready.Done()
			if err != nil {
				t.Error(err)
				return
			}
			if err := w.WaitDurable(context.Background(), target); err != nil {
				t.Error(err)
			}
		}(i)
	}
	ready.Wait() // every record is appended; waiters are queuing on the token
	<-w.syncSem  // release: one waiter becomes the group syncer
	done.Wait()

	if got := mFsyncs.Value() - before; got != 1 {
		t.Fatalf("%d commits used %d fsyncs, want exactly 1 shared fsync", waiters, got)
	}
	st := w.Stat()
	if st.SyncedBytes < st.TotalBytes {
		t.Fatalf("watermark %d below total %d after group sync", st.SyncedBytes, st.TotalBytes)
	}
}
