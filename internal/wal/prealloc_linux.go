//go:build linux

package wal

import (
	"errors"
	"os"
	"syscall"
)

// fallocKeepSize (FALLOC_FL_KEEP_SIZE) reserves blocks without extending the
// file size, so the recovery scanner never sees a preallocated zero tail —
// the segment's logical length keeps tracking actual writes.
const fallocKeepSize = 0x01

// preallocate reserves n bytes of disk for f. Filesystems without fallocate
// support report "no reservation available", which is not an error — ENOSPC
// then simply surfaces on the first append that runs out of disk. Genuine
// failures, ENOSPC above all, propagate.
func preallocate(f *os.File, n int64) error {
	if n <= 0 {
		return nil
	}
	err := syscall.Fallocate(int(f.Fd()), fallocKeepSize, 0, n)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, syscall.EOPNOTSUPP), errors.Is(err, syscall.ENOSYS), errors.Is(err, syscall.EINVAL):
		return nil
	default:
		return err
	}
}
