//go:build !linux

package wal

import "os"

// preallocate is a no-op where fallocate is unavailable; ENOSPC then
// surfaces on the first append that actually runs out of disk.
func preallocate(*os.File, int64) error { return nil }
