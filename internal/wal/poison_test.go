package wal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

func testRecord(payload byte) *Record {
	return &Record{Type: TDeltaInsert, Table: "t", A: 1, B: uint64(payload), Payload: []byte{payload, payload, payload}}
}

// A failed fsync must poison the writer permanently: the failing append
// reports ErrPoisoned, later appends fail fast, and Close must not fsync
// (fsyncgate: a retried fsync can falsely succeed after the kernel dropped
// the dirty pages).
func TestFsyncFailurePoisonsWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecord(1)); err != nil {
		t.Fatalf("healthy append: %v", err)
	}

	w.SetFailSync(1)
	err = w.Append(testRecord(2))
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append through failed fsync: got %v, want ErrPoisoned", err)
	}
	var pe *PoisonedError
	if !errors.As(err, &pe) {
		t.Fatalf("append error %v is not a *PoisonedError", err)
	}

	// The record was appended but never made durable: the watermark must
	// not have advanced past the pre-failure sync point.
	st := w.Stat()
	if !st.Poisoned {
		t.Fatal("Stat().Poisoned = false after fsync failure")
	}
	if st.SyncedBytes >= st.TotalBytes {
		t.Fatalf("watermark advanced over unsynced data: synced=%d total=%d", st.SyncedBytes, st.TotalBytes)
	}

	// Subsequent operations fail fast with the same poison.
	if err := w.Append(testRecord(3)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison: got %v, want ErrPoisoned", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Sync after poison: got %v, want ErrPoisoned", err)
	}
	if _, err := w.Rotate(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Rotate after poison: got %v, want ErrPoisoned", err)
	}
	if err := w.WriteProbe(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("WriteProbe after poison: got %v, want ErrPoisoned", err)
	}

	// Close surfaces the poison instead of pretending the log is clean.
	if err := w.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Close after poison: got %v, want ErrPoisoned", err)
	}
}

// Pending WaitDurable waiters must be failed (not left hanging) when the
// writer poisons.
func TestPoisonFailsPendingWaiters(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //nolint:errcheck — poisoned by the test

	target, err := w.AppendAsync(testRecord(1))
	if err != nil {
		t.Fatal(err)
	}

	// Park waiters on a target the poisoned writer will never reach. They
	// grab the sync token themselves under FsyncOff... so instead occupy
	// the token first so they genuinely park on the note channel.
	w.syncSem <- struct{}{}
	const waiters = 4
	errs := make(chan error, waiters)
	var started sync.WaitGroup
	started.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			started.Done()
			errs <- w.WaitDurable(context.Background(), target)
		}()
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let the waiters park

	w.Poison(errors.New("boom"))
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrPoisoned) {
				t.Fatalf("waiter %d: got %v, want ErrPoisoned", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d still blocked after poison", i)
		}
	}
	<-w.syncSem
}

// A disk-full append must unwind the torn frame, leave the writer usable,
// and succeed again once space returns — and the log must scan cleanly
// through the whole episode.
func TestAppendENOSPCUnwindsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 3; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}

	w.SetAppendNoSpace(1)
	err = w.Append(testRecord(4))
	if err == nil || !IsNoSpace(err) {
		t.Fatalf("append under ENOSPC: got %v, want ENOSPC-wrapping error", err)
	}
	var nse *NoSpaceError
	if !errors.As(err, &nse) {
		t.Fatalf("append error %v is not a *NoSpaceError", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("NoSpaceError does not unwrap to syscall.ENOSPC: %v", err)
	}
	// The disk stays "full" until freed: the next append fails too.
	if err := w.Append(testRecord(5)); !IsNoSpace(err) {
		t.Fatalf("second append under ENOSPC: got %v, want ENOSPC", err)
	}
	if err := w.WriteProbe(); !IsNoSpace(err) {
		t.Fatalf("WriteProbe under ENOSPC: got %v, want ENOSPC", err)
	}
	if st := w.Stat(); st.Poisoned {
		t.Fatal("ENOSPC must not poison the writer")
	}

	// Space returns.
	w.SetAppendNoSpace(0)
	if err := w.WriteProbe(); err != nil {
		t.Fatalf("WriteProbe after space freed: %v", err)
	}
	if err := w.Append(testRecord(6)); err != nil {
		t.Fatalf("append after space freed: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The unwind must have left no torn frame: the full log scans cleanly
	// and contains exactly the acknowledged records (1,2,3,6).
	var got []byte
	res, err := Scan(dir, 1, false, func(_ uint64, rec *Record) error {
		got = append(got, rec.Payload[0])
		return nil
	})
	if err != nil {
		t.Fatalf("scan after ENOSPC episode: %v", err)
	}
	if res.Truncated {
		t.Fatal("scan reported a torn tail; ENOSPC unwind left garbage")
	}
	want := []byte{1, 2, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("recovered records %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered records %v, want %v", got, want)
		}
	}
}

// Rotation provisions the next segment before sealing the current one, so a
// disk-full rotation leaves the writer appending into the current segment.
func TestRotateENOSPCKeepsCurrentSegmentWritable(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation quickly.
	w, err := Create(dir, 1, Options{Policy: FsyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Fill past the rotation threshold while "disk full" blocks provisioning
	// of the next segment: appends must keep succeeding into segment 1.
	// SetAppendNoSpace affects record frames, not fallocate, so instead
	// verify via Rotate(): force rotations and confirm over-length growth
	// is tolerated when rotation cannot proceed. Simulate the provisioning
	// failure by making the directory read-only.
	if err := w.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755) //nolint:errcheck — test cleanup
	if os.Geteuid() == 0 {
		t.Skip("running as root: read-only directory does not block segment creation")
	}
	// Appends past SegmentBytes try to rotate; provisioning fails (EACCES,
	// not ENOSPC) and must surface as an error without corrupting state.
	var rotateErr error
	for i := byte(2); i < 40; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			rotateErr = err
			break
		}
	}
	if rotateErr == nil {
		t.Fatal("expected rotation provisioning failure in read-only dir")
	}
	if st := w.Stat(); st.Poisoned {
		t.Fatal("provisioning failure must not poison the writer")
	}
	if err := os.Chmod(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecord(41)); err != nil {
		t.Fatalf("append after dir writable again: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// Preallocation must not change the segment's logical size: recovery reads
// exactly the written bytes (KEEP_SIZE semantics).
func TestPreallocKeepsLogicalSize(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncAlways, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecord(7)); err != nil {
		t.Fatal(err)
	}
	st := w.Stat()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, SegmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != st.TotalBytes {
		t.Fatalf("segment file size %d, want logical size %d (preallocation leaked into file length)", fi.Size(), st.TotalBytes)
	}
	if _, err := Scan(dir, 1, false, func(uint64, *Record) error { return nil }); err != nil {
		t.Fatalf("scan of preallocated segment: %v", err)
	}
}

// OnPoison fires exactly once, with the poison cause.
func TestOnPoisonHookFiresOnce(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var calls []error
	w, err := Create(dir, 1, Options{
		Policy: FsyncAlways,
		OnPoison: func(e error) {
			mu.Lock()
			calls = append(calls, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Poison(errors.New("first"))
	w.Poison(errors.New("second"))
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 {
		t.Fatalf("OnPoison fired %d times, want 1", len(calls))
	}
	if !errors.Is(calls[0], ErrPoisoned) {
		t.Fatalf("OnPoison got %v, want ErrPoisoned wrapper", calls[0])
	}
	w.Close() //nolint:errcheck — poisoned by the test
}

// VerifySegments checks closed segments only and spots corruption.
func TestVerifySegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{Policy: FsyncAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 10; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stat()
	if st.Seq < 3 {
		t.Fatalf("expected several segments, at %d", st.Seq)
	}
	segs, recs, err := VerifySegments(dir, st.Seq)
	if err != nil {
		t.Fatalf("VerifySegments on clean log: %v", err)
	}
	if segs == 0 || recs == 0 {
		t.Fatalf("VerifySegments verified nothing: segs=%d recs=%d", segs, recs)
	}

	// Flip a byte in the middle of the first closed segment's first frame.
	path := filepath.Join(dir, SegmentName(1))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[segHeaderLen+frameHeadLen] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifySegments(dir, st.Seq); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifySegments on corrupt closed segment: got %v, want ErrCorrupt", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
