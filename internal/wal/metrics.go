package wal

import "apollo/internal/metrics"

// Process-wide series for the write-ahead log, aggregated across every
// Writer/Scan in the process (one per durable DB in practice).
var (
	mAppends = metrics.Default.Counter("apollo_wal_appends_total",
		"records appended to the write-ahead log")
	mAppendBytes = metrics.Default.Counter("apollo_wal_bytes_total",
		"framed bytes appended to the write-ahead log")
	mFsyncs = metrics.Default.Counter("apollo_wal_fsyncs_total",
		"fsync calls issued by the write-ahead log (group commits, rotations, interval flushes)")
	mSegments = metrics.Default.Counter("apollo_wal_segments_total",
		"write-ahead log segment files opened")
	mTruncatedTail = metrics.Default.Counter("apollo_recovery_truncated_tail_total",
		"torn write-ahead log tails dropped during recovery scans")
	mPoisoned = metrics.Default.Counter("apollo_wal_poisoned_total",
		"write-ahead log writers permanently fail-stopped by an fsync failure")
	mNoSpace = metrics.Default.Counter("apollo_wal_enospc_total",
		"write-ahead log appends refused by disk exhaustion (after torn-frame unwind)")
)
