package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Segment file layout:
//
//	header   16 bytes: 8-byte magic "APWAL001" + segment seq uint64 LE
//	frames   repeated: [len uint32 LE][crc32c uint32 LE][body]
//
// crc32c (Castagnoli) covers the body only. A frame is valid when its declared
// length is in (0, MaxRecordBytes], the body is fully present, and the CRC
// matches.

const (
	segMagic      = "APWAL001"
	segHeaderLen  = 16
	frameHeadLen  = 8
	segFileSuffix = ".wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when appended records are fsynced to disk.
type Policy uint8

// Fsync policies.
const (
	// FsyncAlways group-commits: every Append returns only after the record
	// is durable (concurrent appenders share one fsync).
	FsyncAlways Policy = iota
	// FsyncInterval fsyncs on a background timer; a crash loses at most one
	// interval of acknowledged appends.
	FsyncInterval
	// FsyncOff never fsyncs during operation (Close still does); durability
	// is whatever the OS page cache survives.
	FsyncOff
)

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "off"
	}
}

// ParsePolicy maps "always" / "interval" / "off" to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return FsyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
	}
}

// Options configure a Writer.
type Options struct {
	// Policy selects the fsync discipline (default FsyncAlways).
	Policy Policy
	// Interval is the FsyncInterval flush period (default 10ms).
	Interval time.Duration
	// SegmentBytes rotates to a new segment file once the current one
	// reaches this size (default 16 MiB).
	SegmentBytes int64
	// CrashAt is a crash-injection test hook: once the writer's cumulative
	// byte count (headers included) would pass CrashAt, it writes only the
	// bytes up to that offset, flushes them, and kills the process. Zero
	// disables it. See internal/wal/crashtest.
	CrashAt int64
	// OnPoison, if set, is invoked exactly once when the writer poisons
	// itself after a failed fsync (fail-stop; see ErrPoisoned). It runs on
	// the goroutine that observed the failure and must not call back into
	// the writer.
	OnPoison func(error)
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 10 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

// Writer appends framed records to segment files. It is safe for concurrent
// use; appends serialize internally and FsyncAlways commits in groups.
type Writer struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	seq      uint64
	segBytes int64 // bytes written to the current segment
	total    int64 // cumulative bytes across all segments, headers included
	closed   bool

	synced  atomic.Int64  // high-water mark of durable cumulative bytes
	syncSem chan struct{} // cap 1: held by the goroutine doing the group fsync
	noteMu  sync.Mutex
	note    chan struct{} // closed and replaced whenever synced advances

	// poison is set once, by the first failed fsync, and never cleared
	// (fsyncgate fail-stop; see Poison). injSyncFail / injNoSpaceIn are the
	// deterministic fault-injection counters (SetFailSync /
	// SetAppendNoSpace); injNoSpaceIn is guarded by mu.
	poison      atomic.Pointer[PoisonedError]
	injSyncFail atomic.Int64
	injNoSpaceIn int64

	intervalStop chan struct{}
	intervalDone chan struct{}
}

// Create opens a writer on dir starting a fresh segment with the given
// sequence number. dir is created if missing. Existing segments are left
// untouched; recovery chooses startSeq past them.
func Create(dir string, startSeq uint64, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &Writer{
		dir:     dir,
		opts:    opts.withDefaults(),
		seq:     startSeq,
		syncSem: make(chan struct{}, 1),
		note:    make(chan struct{}),
	}
	if err := w.openSegmentLocked(startSeq); err != nil {
		return nil, err
	}
	if w.opts.Policy == FsyncInterval {
		w.intervalStop = make(chan struct{})
		w.intervalDone = make(chan struct{})
		go w.intervalLoop()
	}
	return w, nil
}

// SegmentName returns the file name of segment seq.
func SegmentName(seq uint64) string {
	return fmt.Sprintf("%08d%s", seq, segFileSuffix)
}

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segFileSuffix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment sequence numbers present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// createSegmentFile opens a fresh segment file and preallocates its full
// budget up front (fallocate with KEEP_SIZE on Linux: blocks are reserved
// but the file size still tracks writes, so recovery scans are unchanged).
// With the space reserved, appends into the segment — including the commit
// record written while the DB flips read-only under ENOSPC — cannot
// themselves die of disk exhaustion.
func (w *Writer) createSegmentFile(seq uint64) (*os.File, error) {
	path := filepath.Join(w.dir, SegmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %d: %w", seq, err)
	}
	if err := preallocate(f, w.opts.SegmentBytes); err != nil {
		f.Close()       //nolint:synccheck — discarding a file we failed to provision
		os.Remove(path) // best effort: nothing references the segment yet
		if IsNoSpace(err) {
			return nil, &NoSpaceError{Op: fmt.Sprintf("preallocate segment %d", seq), Cause: err}
		}
		return nil, fmt.Errorf("wal: preallocate segment %d: %w", seq, err)
	}
	return f, nil
}

func (w *Writer) openSegmentLocked(seq uint64) error {
	f, err := w.createSegmentFile(seq)
	if err != nil {
		return err
	}
	w.f = f
	w.seq = seq
	w.segBytes = 0
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if err := w.writeRawLocked(hdr[:], false); err != nil {
		return err
	}
	mSegments.Inc()
	return nil
}

// writeRawLocked writes b to the current segment applying the crash-injection
// hook: if the cumulative byte count would pass CrashAt, only the prefix up
// to CrashAt is written (then flushed) and the process exits — simulating a
// torn write at an arbitrary log offset.
//
// A failed or short write is unwound — the file is truncated back to the
// pre-write offset and the cursor repositioned (Truncate does not move it) —
// so a disk-full append never leaves a torn frame mid-segment. ENOSPC then
// surfaces as a typed NoSpaceError and the writer stays usable; if the
// unwind itself fails the segment tail is unknowable and the writer poisons
// (fail-stop). isFrame marks record-frame writes, the only ones subject to
// disk-full injection.
func (w *Writer) writeRawLocked(b []byte, isFrame bool) error {
	if w.opts.CrashAt > 0 {
		remaining := w.opts.CrashAt - w.total
		if remaining <= 0 {
			w.f.Sync() //nolint:synccheck — crash-injection hook, process exits
			os.Exit(3)
		}
		if int64(len(b)) > remaining {
			w.f.Write(b[:remaining])
			w.f.Sync() //nolint:synccheck — crash-injection hook, process exits
			os.Exit(3)
		}
	}
	var n int
	var werr error
	if isFrame && w.injNoSpaceIn == 1 {
		// Simulated disk-full: write a genuine partial prefix so the
		// truncate-back unwind runs exactly as it would for a real short
		// write, then report ENOSPC.
		n, _ = w.f.Write(b[:len(b)/2])
		werr = fmt.Errorf("injected write failure: %w", syscall.ENOSPC)
	} else {
		if isFrame && w.injNoSpaceIn > 1 {
			w.injNoSpaceIn--
		}
		n, werr = w.f.Write(b)
		if werr == nil && n != len(b) {
			werr = io.ErrShortWrite
		}
	}
	if werr != nil {
		if terr := w.f.Truncate(w.segBytes); terr != nil {
			w.Poison(fmt.Errorf("wal: unwind truncate segment %d after failed write: %w", w.seq, terr))
			return w.Poisoned()
		}
		if _, serr := w.f.Seek(w.segBytes, io.SeekStart); serr != nil {
			w.Poison(fmt.Errorf("wal: unwind seek segment %d after failed write: %w", w.seq, serr))
			return w.Poisoned()
		}
		if IsNoSpace(werr) {
			mNoSpace.Inc()
			return &NoSpaceError{Op: fmt.Sprintf("append segment %d", w.seq), Cause: werr}
		}
		return fmt.Errorf("wal: write segment %d: %w", w.seq, werr)
	}
	w.total += int64(len(b))
	w.segBytes += int64(len(b))
	return nil
}

// Append frames and appends one record. Under FsyncAlways it returns only
// once the record is durable.
func (w *Writer) Append(rec *Record) error {
	target, err := w.appendFrame(rec)
	if err != nil {
		return err
	}
	if w.opts.Policy == FsyncAlways {
		return w.WaitDurable(context.Background(), target)
	}
	return nil
}

// AppendAsync appends one record without waiting for durability under any
// policy, returning the durable target (the writer's cumulative byte offset
// after the record). Transactional DML uses it: intra-transaction records
// need no fsync of their own because a transaction is committed only by its
// TCommit record — pass the final target to WaitDurable at commit and one
// fsync covers the whole transaction (and, with concurrent sessions, their
// transactions too).
func (w *Writer) AppendAsync(rec *Record) (int64, error) {
	return w.appendFrame(rec)
}

func (w *Writer) appendFrame(rec *Record) (int64, error) {
	body := rec.AppendBody(nil)
	if len(body) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record body %d bytes exceeds max %d", len(body), MaxRecordBytes)
	}
	frame := make([]byte, frameHeadLen, frameHeadLen+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, castagnoli))
	frame = append(frame, body...)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: writer closed")
	}
	if err := w.Poisoned(); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	if w.segBytes+int64(len(frame)) > w.opts.SegmentBytes && w.segBytes > segHeaderLen {
		if err := w.rotateLocked(); err != nil {
			if !IsNoSpace(err) {
				w.mu.Unlock()
				return 0, err
			}
			// Disk full while provisioning the next segment: keep appending
			// to the current (already preallocated) one instead of failing
			// the record; rotation retries on a later append. If the current
			// segment's reservation is exhausted too, the append below
			// reports ENOSPC itself.
		}
	}
	if err := w.writeRawLocked(frame, true); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	target := w.total
	w.mu.Unlock()

	mAppends.Inc()
	mAppendBytes.Add(int64(len(frame)))
	return target, nil
}

// rotateLocked seals the current segment and switches to the next one. The
// next segment is provisioned (created + preallocated) BEFORE the current
// one is touched: if the disk is full the failure surfaces there, the
// current segment stays open and writable, and the caller keeps appending.
// The seal fsync runs under every policy — once a segment is closed no
// later fsync can reach it, so the durable watermark must cover it now —
// and a seal failure poisons the writer (fsyncgate fail-stop).
func (w *Writer) rotateLocked() error {
	if err := w.Poisoned(); err != nil {
		return err
	}
	nextSeq := w.seq + 1
	nf, err := w.createSegmentFile(nextSeq)
	if err != nil {
		return err
	}
	discardNext := func() {
		nf.Close() //nolint:synccheck — discarding an empty segment we never switched to
		os.Remove(filepath.Join(w.dir, SegmentName(nextSeq)))
	}
	if err := w.syncFile(w.f); err != nil {
		discardNext()
		return err
	}
	w.advanceSynced(w.total)
	if err := w.f.Close(); err != nil {
		// The sealed data is durable, but a failing close leaves the handle
		// state unknown; fail-stop like a sync failure rather than guess.
		discardNext()
		w.Poison(fmt.Errorf("wal: close segment %d: %w", w.seq, err))
		return w.Poisoned()
	}
	w.f = nf
	w.seq = nextSeq
	w.segBytes = 0
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], nextSeq)
	if err := w.writeRawLocked(hdr[:], false); err != nil {
		// The segment is preallocated, so a header write can only fail for
		// non-space reasons; without its header the segment is unusable.
		w.Poison(fmt.Errorf("wal: write header of segment %d: %w", nextSeq, err))
		return w.Poisoned()
	}
	mSegments.Inc()
	return nil
}

// Rotate forces a segment rotation and returns the new segment's sequence
// number. Checkpoints rotate so the image's replay point is a segment
// boundary.
func (w *Writer) Rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: writer closed")
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// WaitDurable blocks until the durable watermark reaches target, fsyncing if
// needed. Concurrent callers batch: at most one goroutine holds the sync
// token at a time and its fsync covers every record appended before it ran;
// the rest wait on the watermark broadcast, so N sessions committing
// concurrently share one fsync. Cancelling ctx abandons the wait (the record
// stays appended and a later fsync will cover it); the fsyncing caller itself
// completes the sync before observing cancellation.
func (w *Writer) WaitDurable(ctx context.Context, target int64) error {
	for w.synced.Load() < target {
		// A poisoned writer will never advance the watermark again: fail
		// the wait with the poison cause instead of blocking forever.
		// Poison broadcasts on note, so waiters parked below wake into
		// this check.
		if err := w.Poisoned(); err != nil {
			return err
		}
		w.noteMu.Lock()
		note := w.note
		w.noteMu.Unlock()
		// Re-check after capturing the broadcast channel: an advance between
		// the first check and the capture would otherwise be missed.
		if w.synced.Load() >= target {
			return nil
		}
		select {
		case w.syncSem <- struct{}{}:
			err := w.syncOnce()
			<-w.syncSem
			if err != nil {
				return err
			}
		case <-note:
			// Another goroutine's fsync advanced the watermark; loop.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// syncOnce fsyncs the current segment and advances the watermark to the
// byte count the sync covered. Caller must hold the sync token, which is
// what keeps the file handle valid: Close acquires the token before closing
// the file.
func (w *Writer) syncOnce() error {
	w.mu.Lock()
	f := w.f
	cur := w.total
	w.mu.Unlock()
	if w.synced.Load() >= cur {
		return nil
	}
	if err := w.syncFile(f); err != nil {
		if errors.Is(err, errSegmentSealed) && w.synced.Load() >= cur {
			// A rotation sealed this segment after the snapshot: its fsync
			// already covered cur and advanced the watermark.
			return nil
		}
		return err
	}
	w.advanceSynced(cur)
	return nil
}

// advanceSynced raises the durable watermark and wakes every WaitDurable
// blocked on it.
func (w *Writer) advanceSynced(v int64) {
	advanceWatermark(&w.synced, v)
	w.broadcast()
}

// broadcast wakes every goroutine parked on the note channel (watermark
// advances and poisoning both use it).
func (w *Writer) broadcast() {
	w.noteMu.Lock()
	close(w.note)
	w.note = make(chan struct{})
	w.noteMu.Unlock()
}

func advanceWatermark(w *atomic.Int64, v int64) {
	for {
		cur := w.Load()
		if v <= cur || w.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Policy returns the writer's fsync policy.
func (w *Writer) Policy() Policy { return w.opts.Policy }

// Sync flushes all appended records to disk regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	target := w.total
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return fmt.Errorf("wal: writer closed")
	}
	return w.WaitDurable(context.Background(), target)
}

func (w *Writer) intervalLoop() {
	defer close(w.intervalDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.intervalStop:
			return
		case <-t.C:
			w.mu.Lock()
			target := w.total
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return
			}
			if err := w.WaitDurable(context.Background(), target); err != nil {
				// Only poisoning can fail a background flush; the writer
				// will never sync again, so stop ticking.
				return
			}
		}
	}
}

// RemoveSegmentsBelow deletes segment files with sequence < seq (checkpoint
// truncation: everything below the image's replay point is covered by it).
func (w *Writer) RemoveSegmentsBelow(seq uint64) error {
	seqs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s < seq {
			if err := os.Remove(filepath.Join(w.dir, SegmentName(s))); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// Stats is a snapshot of the writer's position.
type Stats struct {
	Seq         uint64 // current segment sequence
	TotalBytes  int64  // cumulative bytes appended, headers included
	SyncedBytes int64  // durable high-water mark
	Policy      Policy
	Poisoned    bool // true once an fsync failure has fail-stopped the writer
}

// Stat returns the writer's current position.
func (w *Writer) Stat() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Seq:         w.seq,
		TotalBytes:  w.total,
		SyncedBytes: w.synced.Load(),
		Policy:      w.opts.Policy,
		Poisoned:    w.poison.Load() != nil,
	}
}

// Close flushes and closes the log. Safe to call once. The final sync and
// the file close run while holding the sync token: a concurrent WaitDurable
// (a commit racing the close) holds the token while it fsyncs, so Close
// cannot close the file out from under it — and once Close's own sync
// advances the watermark, any late waiter sees its target already durable
// and returns without touching the closed file.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.intervalStop != nil {
		close(w.intervalStop)
		<-w.intervalDone
	}
	w.syncSem <- struct{}{}
	defer func() { <-w.syncSem }()
	w.mu.Lock()
	f := w.f
	total := w.total
	w.mu.Unlock()
	if perr := w.Poisoned(); perr != nil {
		// fsyncgate: never retry an fsync after a failure — the kernel may
		// have dropped the dirty pages, and a "successful" retry would
		// advance the watermark over data that was never written. Close the
		// handle unsynced and surface the poison cause.
		f.Close() //nolint:synccheck — poisoned handle, close error is subsumed by the poison
		return perr
	}
	err := w.syncFile(f)
	if err == nil {
		w.advanceSynced(total)
	} else {
		// syncFile poisoned the writer (Close holds the sync token, so the
		// sealed-by-rotation race cannot occur here).
		f.Close() //nolint:synccheck — poisoned handle, close error is subsumed by the poison
		return err
	}
	return f.Close()
}
