package wal

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Segment file layout:
//
//	header   16 bytes: 8-byte magic "APWAL001" + segment seq uint64 LE
//	frames   repeated: [len uint32 LE][crc32c uint32 LE][body]
//
// crc32c (Castagnoli) covers the body only. A frame is valid when its declared
// length is in (0, MaxRecordBytes], the body is fully present, and the CRC
// matches.

const (
	segMagic      = "APWAL001"
	segHeaderLen  = 16
	frameHeadLen  = 8
	segFileSuffix = ".wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when appended records are fsynced to disk.
type Policy uint8

// Fsync policies.
const (
	// FsyncAlways group-commits: every Append returns only after the record
	// is durable (concurrent appenders share one fsync).
	FsyncAlways Policy = iota
	// FsyncInterval fsyncs on a background timer; a crash loses at most one
	// interval of acknowledged appends.
	FsyncInterval
	// FsyncOff never fsyncs during operation (Close still does); durability
	// is whatever the OS page cache survives.
	FsyncOff
)

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "off"
	}
}

// ParsePolicy maps "always" / "interval" / "off" to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return FsyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
	}
}

// Options configure a Writer.
type Options struct {
	// Policy selects the fsync discipline (default FsyncAlways).
	Policy Policy
	// Interval is the FsyncInterval flush period (default 10ms).
	Interval time.Duration
	// SegmentBytes rotates to a new segment file once the current one
	// reaches this size (default 16 MiB).
	SegmentBytes int64
	// CrashAt is a crash-injection test hook: once the writer's cumulative
	// byte count (headers included) would pass CrashAt, it writes only the
	// bytes up to that offset, flushes them, and kills the process. Zero
	// disables it. See internal/wal/crashtest.
	CrashAt int64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 10 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

// Writer appends framed records to segment files. It is safe for concurrent
// use; appends serialize internally and FsyncAlways commits in groups.
type Writer struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	seq      uint64
	segBytes int64 // bytes written to the current segment
	total    int64 // cumulative bytes across all segments, headers included
	closed   bool

	synced  atomic.Int64  // high-water mark of durable cumulative bytes
	syncSem chan struct{} // cap 1: held by the goroutine doing the group fsync
	noteMu  sync.Mutex
	note    chan struct{} // closed and replaced whenever synced advances

	intervalStop chan struct{}
	intervalDone chan struct{}
}

// Create opens a writer on dir starting a fresh segment with the given
// sequence number. dir is created if missing. Existing segments are left
// untouched; recovery chooses startSeq past them.
func Create(dir string, startSeq uint64, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &Writer{
		dir:     dir,
		opts:    opts.withDefaults(),
		seq:     startSeq,
		syncSem: make(chan struct{}, 1),
		note:    make(chan struct{}),
	}
	if err := w.openSegmentLocked(startSeq); err != nil {
		return nil, err
	}
	if w.opts.Policy == FsyncInterval {
		w.intervalStop = make(chan struct{})
		w.intervalDone = make(chan struct{})
		go w.intervalLoop()
	}
	return w, nil
}

// SegmentName returns the file name of segment seq.
func SegmentName(seq uint64) string {
	return fmt.Sprintf("%08d%s", seq, segFileSuffix)
}

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segFileSuffix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment sequence numbers present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (w *Writer) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, SegmentName(seq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment %d: %w", seq, err)
	}
	w.f = f
	w.seq = seq
	w.segBytes = 0
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if err := w.writeRawLocked(hdr[:]); err != nil {
		return err
	}
	mSegments.Inc()
	return nil
}

// writeRawLocked writes b to the current segment applying the crash-injection
// hook: if the cumulative byte count would pass CrashAt, only the prefix up
// to CrashAt is written (then flushed) and the process exits — simulating a
// torn write at an arbitrary log offset.
func (w *Writer) writeRawLocked(b []byte) error {
	if w.opts.CrashAt > 0 {
		remaining := w.opts.CrashAt - w.total
		if remaining <= 0 {
			w.f.Sync()
			os.Exit(3)
		}
		if int64(len(b)) > remaining {
			w.f.Write(b[:remaining])
			w.f.Sync()
			os.Exit(3)
		}
	}
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("wal: write segment %d: %w", w.seq, err)
	}
	w.total += int64(len(b))
	w.segBytes += int64(len(b))
	return nil
}

// Append frames and appends one record. Under FsyncAlways it returns only
// once the record is durable.
func (w *Writer) Append(rec *Record) error {
	target, err := w.appendFrame(rec)
	if err != nil {
		return err
	}
	if w.opts.Policy == FsyncAlways {
		return w.WaitDurable(context.Background(), target)
	}
	return nil
}

// AppendAsync appends one record without waiting for durability under any
// policy, returning the durable target (the writer's cumulative byte offset
// after the record). Transactional DML uses it: intra-transaction records
// need no fsync of their own because a transaction is committed only by its
// TCommit record — pass the final target to WaitDurable at commit and one
// fsync covers the whole transaction (and, with concurrent sessions, their
// transactions too).
func (w *Writer) AppendAsync(rec *Record) (int64, error) {
	return w.appendFrame(rec)
}

func (w *Writer) appendFrame(rec *Record) (int64, error) {
	body := rec.AppendBody(nil)
	if len(body) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record body %d bytes exceeds max %d", len(body), MaxRecordBytes)
	}
	frame := make([]byte, frameHeadLen, frameHeadLen+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, castagnoli))
	frame = append(frame, body...)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: writer closed")
	}
	if w.segBytes+int64(len(frame)) > w.opts.SegmentBytes && w.segBytes > segHeaderLen {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	if err := w.writeRawLocked(frame); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	target := w.total
	w.mu.Unlock()

	mAppends.Inc()
	mAppendBytes.Add(int64(len(frame)))
	return target, nil
}

// rotateLocked syncs and closes the current segment and opens the next one.
// The sync runs under every policy: once a segment is closed no later fsync
// can reach it, so the durable watermark must cover it now.
func (w *Writer) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync segment %d: %w", w.seq, err)
	}
	mFsyncs.Inc()
	w.advanceSynced(w.total)
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment %d: %w", w.seq, err)
	}
	return w.openSegmentLocked(w.seq + 1)
}

// Rotate forces a segment rotation and returns the new segment's sequence
// number. Checkpoints rotate so the image's replay point is a segment
// boundary.
func (w *Writer) Rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: writer closed")
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// WaitDurable blocks until the durable watermark reaches target, fsyncing if
// needed. Concurrent callers batch: at most one goroutine holds the sync
// token at a time and its fsync covers every record appended before it ran;
// the rest wait on the watermark broadcast, so N sessions committing
// concurrently share one fsync. Cancelling ctx abandons the wait (the record
// stays appended and a later fsync will cover it); the fsyncing caller itself
// completes the sync before observing cancellation.
func (w *Writer) WaitDurable(ctx context.Context, target int64) error {
	for w.synced.Load() < target {
		w.noteMu.Lock()
		note := w.note
		w.noteMu.Unlock()
		// Re-check after capturing the broadcast channel: an advance between
		// the first check and the capture would otherwise be missed.
		if w.synced.Load() >= target {
			return nil
		}
		select {
		case w.syncSem <- struct{}{}:
			err := w.syncOnce()
			<-w.syncSem
			if err != nil {
				return err
			}
		case <-note:
			// Another goroutine's fsync advanced the watermark; loop.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// syncOnce fsyncs the current segment and advances the watermark to the
// byte count the sync covered. Caller must hold the sync token, which is
// what keeps the file handle valid: Close acquires the token before closing
// the file.
func (w *Writer) syncOnce() error {
	w.mu.Lock()
	f := w.f
	cur := w.total
	w.mu.Unlock()
	if w.synced.Load() >= cur {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	mFsyncs.Inc()
	w.advanceSynced(cur)
	return nil
}

// advanceSynced raises the durable watermark and wakes every WaitDurable
// blocked on it.
func (w *Writer) advanceSynced(v int64) {
	advanceWatermark(&w.synced, v)
	w.noteMu.Lock()
	close(w.note)
	w.note = make(chan struct{})
	w.noteMu.Unlock()
}

func advanceWatermark(w *atomic.Int64, v int64) {
	for {
		cur := w.Load()
		if v <= cur || w.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Policy returns the writer's fsync policy.
func (w *Writer) Policy() Policy { return w.opts.Policy }

// Sync flushes all appended records to disk regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	target := w.total
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return fmt.Errorf("wal: writer closed")
	}
	return w.WaitDurable(context.Background(), target)
}

func (w *Writer) intervalLoop() {
	defer close(w.intervalDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.intervalStop:
			return
		case <-t.C:
			w.mu.Lock()
			target := w.total
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return
			}
			w.WaitDurable(context.Background(), target)
		}
	}
}

// RemoveSegmentsBelow deletes segment files with sequence < seq (checkpoint
// truncation: everything below the image's replay point is covered by it).
func (w *Writer) RemoveSegmentsBelow(seq uint64) error {
	seqs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s < seq {
			if err := os.Remove(filepath.Join(w.dir, SegmentName(s))); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// Stats is a snapshot of the writer's position.
type Stats struct {
	Seq         uint64 // current segment sequence
	TotalBytes  int64  // cumulative bytes appended, headers included
	SyncedBytes int64  // durable high-water mark
	Policy      Policy
}

// Stat returns the writer's current position.
func (w *Writer) Stat() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{Seq: w.seq, TotalBytes: w.total, SyncedBytes: w.synced.Load(), Policy: w.opts.Policy}
}

// Close flushes and closes the log. Safe to call once. The final sync and
// the file close run while holding the sync token: a concurrent WaitDurable
// (a commit racing the close) holds the token while it fsyncs, so Close
// cannot close the file out from under it — and once Close's own sync
// advances the watermark, any late waiter sees its target already durable
// and returns without touching the closed file.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.intervalStop != nil {
		close(w.intervalStop)
		<-w.intervalDone
	}
	w.syncSem <- struct{}{}
	defer func() { <-w.syncSem }()
	w.mu.Lock()
	f := w.f
	total := w.total
	w.mu.Unlock()
	err := f.Sync()
	if err == nil {
		w.advanceSynced(total)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
