// Package wal implements the engine's write-ahead log: length-prefixed,
// CRC32C-framed records appended to numbered segment files, with group commit
// under a configurable fsync policy and segment rotation. The log is physical
// at the storage-directory level and logical at the row level: delta inserts
// and deletes, delete-bitmap sets, row-group publishes/retires, and
// checkpoint markers. Recovery (internal/persist) replays records over the
// last checkpoint image; every record's replay is idempotent so fuzzy
// checkpoints taken concurrently with DML stay correct.
package wal

import (
	"encoding/binary"
	"fmt"
)

// Type identifies a WAL record type.
type Type uint8

// Record types. The A/B operands are overloaded per type; Payload carries
// variable-length bodies (encoded rows, table definitions, group metadata).
const (
	// TCreateTable: Table = name, Payload = table definition
	// (table.EncodeTableDef).
	TCreateTable Type = iota + 1
	// TDropTable: Table = name.
	TDropTable
	// TDeltaInsert: A = delta store id, B = tuple key, Payload = encoded row.
	TDeltaInsert
	// TDeltaDelete: A = delta store id, B = tuple key.
	TDeltaDelete
	// TDeleteSet: A = row group id, B = tuple id (delete-bitmap set).
	TDeleteSet
	// TDeltaClose: A = closed store id, B = new open store id.
	TDeltaClose
	// TGroupPublish: A = consumed delta store id (0 = none, e.g. bulk load),
	// Payload = group metadata + primary-dictionary appends
	// (colstore.MarshalPublish).
	TGroupPublish
	// TGroupRetire: A = row group id (rebuild/merge removal).
	TGroupRetire
	// TDeltaDrop: A = delta store id (store fully deleted while closed; the
	// tuple mover drops it without producing a row group).
	TDeltaDrop
	// TTableReset: A = new open delta store id (rebuild cleared all delta
	// stores).
	TTableReset
	// TCheckpointBegin: A = segment sequence the checkpoint image will cover
	// from.
	TCheckpointBegin
	// TCheckpointEnd: A = same sequence, logged after the image is durable.
	TCheckpointEnd
	// TBegin: Txn = transaction id. Marks the start of an explicit
	// transaction; carries no operands.
	TBegin
	// TCommit: Txn = transaction id, A = commit timestamp. A transaction is
	// committed iff its TCommit is in the durable log; recovery discards the
	// effects of any transaction without one.
	TCommit
	// TAbort: Txn = transaction id. Advisory: recovery ignores uncommitted
	// transactions whether or not their abort was logged.
	TAbort
)

func (t Type) String() string {
	switch t {
	case TCreateTable:
		return "create-table"
	case TDropTable:
		return "drop-table"
	case TDeltaInsert:
		return "delta-insert"
	case TDeltaDelete:
		return "delta-delete"
	case TDeleteSet:
		return "delete-set"
	case TDeltaClose:
		return "delta-close"
	case TGroupPublish:
		return "group-publish"
	case TGroupRetire:
		return "group-retire"
	case TDeltaDrop:
		return "delta-drop"
	case TTableReset:
		return "table-reset"
	case TCheckpointBegin:
		return "checkpoint-begin"
	case TCheckpointEnd:
		return "checkpoint-end"
	case TBegin:
		return "txn-begin"
	case TCommit:
		return "txn-commit"
	case TAbort:
		return "txn-abort"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Record is one WAL entry. A and B are small numeric operands whose meaning
// depends on Type; Payload carries variable-length bodies. Txn tags the
// record with the transaction that produced it: zero means autocommit (the
// record is committed by virtue of being in the log), nonzero means the
// record's effects apply only if the log also holds a TCommit for that id.
type Record struct {
	Type    Type
	Table   string
	A, B    uint64
	Txn     uint64
	Payload []byte
}

// MaxRecordBytes bounds a framed record body; the reader treats larger
// declared lengths as log damage.
const MaxRecordBytes = 1 << 28

// AppendBody appends the record's body (the framed, CRC-covered bytes) to dst.
func (r *Record) AppendBody(dst []byte) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.AppendUvarint(dst, uint64(len(r.Table)))
	dst = append(dst, r.Table...)
	dst = binary.AppendUvarint(dst, r.A)
	dst = binary.AppendUvarint(dst, r.B)
	dst = binary.AppendUvarint(dst, r.Txn)
	dst = binary.AppendUvarint(dst, uint64(len(r.Payload)))
	dst = append(dst, r.Payload...)
	return dst
}

// UnmarshalRecord decodes a record body produced by AppendBody. It is strict
// about bounds so damaged frames fail cleanly rather than over-read.
func UnmarshalRecord(body []byte) (*Record, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("wal: empty record body")
	}
	r := &Record{Type: Type(body[0])}
	if r.Type < TCreateTable || r.Type > TAbort {
		return nil, fmt.Errorf("wal: unknown record type %d", body[0])
	}
	pos := 1
	tl, n := binary.Uvarint(body[pos:])
	if n <= 0 || tl > uint64(len(body)-pos-n) {
		return nil, fmt.Errorf("wal: bad table-name length")
	}
	pos += n
	r.Table = string(body[pos : pos+int(tl)])
	pos += int(tl)
	r.A, n = binary.Uvarint(body[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("wal: bad operand A")
	}
	pos += n
	r.B, n = binary.Uvarint(body[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("wal: bad operand B")
	}
	pos += n
	r.Txn, n = binary.Uvarint(body[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("wal: bad transaction id")
	}
	pos += n
	pl, n := binary.Uvarint(body[pos:])
	if n <= 0 || pl > uint64(len(body)-pos-n) {
		return nil, fmt.Errorf("wal: bad payload length")
	}
	pos += n
	if pl > 0 {
		r.Payload = append([]byte(nil), body[pos:pos+int(pl)]...)
	}
	pos += int(pl)
	if pos != len(body) {
		return nil, fmt.Errorf("wal: %d trailing bytes after record", len(body)-pos)
	}
	return r, nil
}
