// Package expr is the scalar expression engine. Every expression evaluates
// two ways: row-at-a-time (Eval, used by row-mode operators and the reference
// executor) and vectorized (EvalVec, used by batch-mode operators). SQL
// three-valued logic applies: comparisons involving NULL yield NULL, AND/OR
// follow Kleene semantics, and filters treat NULL as not-qualifying.
package expr

import (
	"fmt"
	"strings"

	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

// Expr is a scalar expression.
type Expr interface {
	// Type returns the expression's result type.
	Type() sqltypes.Type
	// Eval evaluates the expression against one row.
	Eval(row sqltypes.Row) sqltypes.Value
	// EvalVec evaluates the expression for physical rows [0, b.NumRows()) of
	// the batch into out (resized by the callee). Selection vectors are
	// ignored here; callers keep the batch's selection.
	EvalVec(b *vector.Batch, out *vector.Vector)
	// String renders the expression in SQL-like syntax.
	String() string
}

// --- Column references and constants ---

// ColRef references column Idx of the input schema.
type ColRef struct {
	Idx  int
	Name string
	Typ  sqltypes.Type
}

// NewColRef builds a column reference.
func NewColRef(idx int, name string, typ sqltypes.Type) *ColRef {
	return &ColRef{Idx: idx, Name: name, Typ: typ}
}

// Type implements Expr.
func (c *ColRef) Type() sqltypes.Type { return c.Typ }

// Eval implements Expr.
func (c *ColRef) Eval(row sqltypes.Row) sqltypes.Value { return row[c.Idx] }

// EvalVec implements Expr by copying the referenced vector. Dict-coded
// string vectors stay coded: codes are copied and the dictionary reference
// shared, so no string is decoded.
func (c *ColRef) EvalVec(b *vector.Batch, out *vector.Vector) {
	src := b.Vecs[c.Idx]
	n := b.NumRows()
	if src.IsCoded() {
		out.MakeCoded(src.Dict, src.DictVals, n)
		if out.Nulls != nil {
			out.Nulls.Reset()
		}
		copy(out.Codes, src.Codes[:n])
		if src.Nulls != nil {
			for i := 0; i < n; i++ {
				if src.Nulls.Get(i) {
					out.SetNull(i)
				}
			}
		}
		return
	}
	out.ClearCoded()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	switch c.Typ {
	case sqltypes.Float64:
		copy(out.F64, src.F64[:n])
	case sqltypes.String:
		copy(out.Str, src.Str[:n])
	default:
		copy(out.I64, src.I64[:n])
	}
	if src.Nulls != nil {
		for i := 0; i < n; i++ {
			if src.Nulls.Get(i) {
				out.SetNull(i)
			}
		}
	}
}

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal value.
type Const struct {
	Val sqltypes.Value
}

// NewConst builds a literal.
func NewConst(v sqltypes.Value) *Const { return &Const{Val: v} }

// Type implements Expr.
func (c *Const) Type() sqltypes.Type { return c.Val.Typ }

// Eval implements Expr.
func (c *Const) Eval(sqltypes.Row) sqltypes.Value { return c.Val }

// EvalVec implements Expr.
func (c *Const) EvalVec(b *vector.Batch, out *vector.Vector) {
	n := b.NumRows()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	for i := 0; i < n; i++ {
		out.SetValue(i, c.Val)
	}
}

func (c *Const) String() string {
	if c.Val.Typ == sqltypes.String && !c.Val.Null {
		return "'" + c.Val.S + "'"
	}
	return c.Val.String()
}

// --- Parameter ---

// Param is a prepared-statement placeholder (`?`): a mutable value cell
// shared between a compiled plan and its prepared statement. Bind writes the
// argument before each execution; evaluation then behaves like a Const.
// Binding and execution must not overlap (a prepared statement runs one
// execution at a time), which is the usual connection discipline.
type Param struct {
	// Idx is the 1-based placeholder position in the statement.
	Idx int
	typ sqltypes.Type
	val sqltypes.Value
}

// NewParam builds the cell for placeholder idx (1-based). Until bound it
// evaluates to NULL of its inferred type.
func NewParam(idx int) *Param {
	return &Param{Idx: idx, val: sqltypes.Value{Null: true}}
}

// SetType records the type the binder inferred from the placeholder's
// context (comparison operand, target column).
func (p *Param) SetType(t sqltypes.Type) { p.typ = t; p.val.Typ = t }

// Bind sets the argument for the next execution.
func (p *Param) Bind(v sqltypes.Value) { p.val = v }

// Type implements Expr.
func (p *Param) Type() sqltypes.Type { return p.typ }

// Eval implements Expr.
func (p *Param) Eval(sqltypes.Row) sqltypes.Value { return p.val }

// EvalVec implements Expr.
func (p *Param) EvalVec(b *vector.Batch, out *vector.Vector) {
	n := b.NumRows()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	for i := 0; i < n; i++ {
		out.SetValue(i, p.val)
	}
}

func (p *Param) String() string { return fmt.Sprintf("$%d", p.Idx) }

// --- Comparison ---

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// matches reports whether comparison result c (-1/0/1) satisfies the op.
func (o CmpOp) matches(c int) bool {
	switch o {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	default:
		return c >= 0
	}
}

// Cmp compares two subexpressions; NULL operands yield NULL.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp builds a comparison.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Type implements Expr.
func (c *Cmp) Type() sqltypes.Type { return sqltypes.Bool }

// Eval implements Expr.
func (c *Cmp) Eval(row sqltypes.Row) sqltypes.Value {
	l, r := c.L.Eval(row), c.R.Eval(row)
	if l.Null || r.Null {
		return sqltypes.NewNull(sqltypes.Bool)
	}
	return sqltypes.NewBool(c.Op.matches(sqltypes.Compare(l, r)))
}

// EvalVec implements Expr with fast paths for column-vs-constant compares on
// numeric payloads — the kernels that make batch mode fast.
func (c *Cmp) EvalVec(b *vector.Batch, out *vector.Vector) {
	n := b.NumRows()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	// Fast path: ColRef vs Const on shared-int payloads or floats.
	if col, okL := c.L.(*ColRef); okL {
		if k, okR := c.R.(*Const); okR && !k.Val.Null {
			src := b.Vecs[col.Idx]
			switch {
			case col.Typ != sqltypes.Float64 && col.Typ != sqltypes.String && k.Val.Typ != sqltypes.Float64:
				cmpI64Const(src, k.Val.I, c.Op, n, out)
				return
			case col.Typ == sqltypes.Float64:
				cmpF64Const(src, k.Val.AsFloat(), c.Op, n, out)
				return
			case col.Typ == sqltypes.String && k.Val.Typ == sqltypes.String:
				cmpStrConst(src, k.Val.S, c.Op, n, out)
				return
			}
		}
	}
	// General path: evaluate both sides, compare per row.
	lv := vector.NewVector(c.L.Type(), n)
	rv := vector.NewVector(c.R.Type(), n)
	c.L.EvalVec(b, lv)
	c.R.EvalVec(b, rv)
	for i := 0; i < n; i++ {
		l, r := lv.Value(i), rv.Value(i)
		if l.Null || r.Null {
			out.SetNull(i)
			continue
		}
		out.I64[i] = b2i(c.Op.matches(sqltypes.Compare(l, r)))
	}
}

func cmpI64Const(src *vector.Vector, k int64, op CmpOp, n int, out *vector.Vector) {
	s := src.I64[:n]
	o := out.I64[:n]
	switch op {
	case EQ:
		for i, v := range s {
			o[i] = b2i(v == k)
		}
	case NE:
		for i, v := range s {
			o[i] = b2i(v != k)
		}
	case LT:
		for i, v := range s {
			o[i] = b2i(v < k)
		}
	case LE:
		for i, v := range s {
			o[i] = b2i(v <= k)
		}
	case GT:
		for i, v := range s {
			o[i] = b2i(v > k)
		}
	default:
		for i, v := range s {
			o[i] = b2i(v >= k)
		}
	}
	propagateNulls(src, n, out)
}

func cmpF64Const(src *vector.Vector, k float64, op CmpOp, n int, out *vector.Vector) {
	s := src.F64[:n]
	o := out.I64[:n]
	switch op {
	case EQ:
		for i, v := range s {
			o[i] = b2i(v == k)
		}
	case NE:
		for i, v := range s {
			o[i] = b2i(v != k)
		}
	case LT:
		for i, v := range s {
			o[i] = b2i(v < k)
		}
	case LE:
		for i, v := range s {
			o[i] = b2i(v <= k)
		}
	case GT:
		for i, v := range s {
			o[i] = b2i(v > k)
		}
	default:
		for i, v := range s {
			o[i] = b2i(v >= k)
		}
	}
	propagateNulls(src, n, out)
}

func cmpStrConst(src *vector.Vector, k string, op CmpOp, n int, out *vector.Vector) {
	if src.IsCoded() {
		cmpCodedConst(src, k, op, n, out)
		return
	}
	s := src.Str[:n]
	o := out.I64[:n]
	for i, v := range s {
		o[i] = b2i(op.matches(strings.Compare(v, k)))
	}
	propagateNulls(src, n, out)
}

// cmpCodedConst compares a dict-coded vector against a string constant in
// code space: equality translates to a single dictionary lookup, ordered
// comparisons are evaluated at most once per distinct dictionary entry
// (memoized), and no row's string is ever decoded.
func cmpCodedConst(src *vector.Vector, k string, op CmpOp, n int, out *vector.Vector) {
	codes := src.Codes[:n]
	o := out.I64[:n]
	switch op {
	case EQ, NE:
		var match uint64
		found := false
		if id, ok := src.Dict.Lookup(k); ok && int(id) < len(src.DictVals) {
			match, found = uint64(id), true
		}
		if !found {
			// Constant absent from the dictionary: EQ is all-false, NE all-true.
			fill := b2i(op == NE)
			for i := range o {
				o[i] = fill
			}
		} else if op == EQ {
			for i, c := range codes {
				o[i] = b2i(c == match)
			}
		} else {
			for i, c := range codes {
				o[i] = b2i(c != match)
			}
		}
	default:
		// memo: 0 = unevaluated, 1 = true, 2 = false per dictionary entry.
		memo := make([]int8, len(src.DictVals))
		nulls := src.Nulls
		for i, c := range codes {
			if nulls != nil && nulls.Get(i) {
				continue // codes at NULL rows are unspecified
			}
			m := memo[c]
			if m == 0 {
				if op.matches(strings.Compare(src.DictVals[c], k)) {
					m = 1
				} else {
					m = 2
				}
				memo[c] = m
			}
			o[i] = b2i(m == 1)
		}
	}
	propagateNulls(src, n, out)
}

func propagateNulls(src *vector.Vector, n int, out *vector.Vector) {
	if src.Nulls == nil {
		return
	}
	for i := 0; i < n; i++ {
		if src.Nulls.Get(i) {
			out.SetNull(i)
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// --- Logical operators (Kleene three-valued logic) ---

// LogicOp is a logical connective.
type LogicOp uint8

// Logical operators.
const (
	And LogicOp = iota
	Or
	Not
)

// Logic combines boolean subexpressions.
type Logic struct {
	Op   LogicOp
	Kids []Expr
}

// NewAnd conjoins expressions (flattening is the caller's concern).
func NewAnd(kids ...Expr) *Logic { return &Logic{Op: And, Kids: kids} }

// NewOr disjoins expressions.
func NewOr(kids ...Expr) *Logic { return &Logic{Op: Or, Kids: kids} }

// NewNot negates an expression.
func NewNot(kid Expr) *Logic { return &Logic{Op: Not, Kids: []Expr{kid}} }

// Type implements Expr.
func (l *Logic) Type() sqltypes.Type { return sqltypes.Bool }

// Eval implements Expr.
func (l *Logic) Eval(row sqltypes.Row) sqltypes.Value {
	switch l.Op {
	case Not:
		v := l.Kids[0].Eval(row)
		if v.Null {
			return v
		}
		return sqltypes.NewBool(v.I == 0)
	case And:
		sawNull := false
		for _, k := range l.Kids {
			v := k.Eval(row)
			if v.Null {
				sawNull = true
			} else if v.I == 0 {
				return sqltypes.NewBool(false)
			}
		}
		if sawNull {
			return sqltypes.NewNull(sqltypes.Bool)
		}
		return sqltypes.NewBool(true)
	default: // Or
		sawNull := false
		for _, k := range l.Kids {
			v := k.Eval(row)
			if v.Null {
				sawNull = true
			} else if v.I != 0 {
				return sqltypes.NewBool(true)
			}
		}
		if sawNull {
			return sqltypes.NewNull(sqltypes.Bool)
		}
		return sqltypes.NewBool(false)
	}
}

// EvalVec implements Expr.
func (l *Logic) EvalVec(b *vector.Batch, out *vector.Vector) {
	n := b.NumRows()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	tmp := vector.NewVector(sqltypes.Bool, n)
	switch l.Op {
	case Not:
		l.Kids[0].EvalVec(b, tmp)
		for i := 0; i < n; i++ {
			if tmp.IsNull(i) {
				out.SetNull(i)
			} else {
				out.I64[i] = 1 - tmp.I64[i]&1
			}
		}
	case And:
		for i := 0; i < n; i++ {
			out.I64[i] = 1 // true until proven otherwise
		}
		for _, k := range l.Kids {
			k.EvalVec(b, tmp)
			for i := 0; i < n; i++ {
				if tmp.IsNull(i) {
					if !out.IsNull(i) && out.I64[i] != 0 {
						out.SetNull(i)
					}
				} else if tmp.I64[i] == 0 {
					out.ClearNull(i)
					out.I64[i] = 0
				}
			}
		}
	default: // Or
		for i := 0; i < n; i++ {
			out.I64[i] = 0
		}
		for _, k := range l.Kids {
			k.EvalVec(b, tmp)
			for i := 0; i < n; i++ {
				if tmp.IsNull(i) {
					if !out.IsNull(i) && out.I64[i] == 0 {
						out.SetNull(i)
					}
				} else if tmp.I64[i] != 0 {
					out.ClearNull(i)
					out.I64[i] = 1
				}
			}
		}
	}
}

func (l *Logic) String() string {
	switch l.Op {
	case Not:
		return fmt.Sprintf("NOT %s", l.Kids[0])
	case And:
		return joinKids(l.Kids, " AND ")
	default:
		return joinKids(l.Kids, " OR ")
	}
}

func joinKids(kids []Expr, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
