package expr

import (
	"fmt"
	"time"

	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[o] }

// Arith applies an arithmetic operator. Integer op integer stays integer
// (except / with a remainder, which SQL integer division truncates); any
// float operand promotes to float. Division by zero yields NULL.
type Arith struct {
	Op   ArithOp
	L, R Expr
	typ  sqltypes.Type
}

// NewArith builds an arithmetic expression, inferring the result type.
func NewArith(op ArithOp, l, r Expr) *Arith {
	typ := sqltypes.Int64
	if l.Type() == sqltypes.Float64 || r.Type() == sqltypes.Float64 {
		typ = sqltypes.Float64
	}
	return &Arith{Op: op, L: l, R: r, typ: typ}
}

// Type implements Expr.
func (a *Arith) Type() sqltypes.Type { return a.typ }

// Eval implements Expr.
func (a *Arith) Eval(row sqltypes.Row) sqltypes.Value {
	l, r := a.L.Eval(row), a.R.Eval(row)
	if l.Null || r.Null {
		return sqltypes.NewNull(a.typ)
	}
	if a.typ == sqltypes.Float64 {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch a.Op {
		case Add:
			return sqltypes.NewFloat(lf + rf)
		case Sub:
			return sqltypes.NewFloat(lf - rf)
		case Mul:
			return sqltypes.NewFloat(lf * rf)
		case Div:
			if rf == 0 {
				return sqltypes.NewNull(sqltypes.Float64)
			}
			return sqltypes.NewFloat(lf / rf)
		default:
			if rf == 0 {
				return sqltypes.NewNull(sqltypes.Float64)
			}
			return sqltypes.NewFloat(float64(int64(lf) % int64(rf)))
		}
	}
	li, ri := l.I, r.I
	switch a.Op {
	case Add:
		return sqltypes.NewInt(li + ri)
	case Sub:
		return sqltypes.NewInt(li - ri)
	case Mul:
		return sqltypes.NewInt(li * ri)
	case Div:
		if ri == 0 {
			return sqltypes.NewNull(sqltypes.Int64)
		}
		return sqltypes.NewInt(li / ri)
	default:
		if ri == 0 {
			return sqltypes.NewNull(sqltypes.Int64)
		}
		return sqltypes.NewInt(li % ri)
	}
}

// EvalVec implements Expr.
func (a *Arith) EvalVec(b *vector.Batch, out *vector.Vector) {
	n := b.NumRows()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	lv := vector.NewVector(a.L.Type(), n)
	rv := vector.NewVector(a.R.Type(), n)
	a.L.EvalVec(b, lv)
	a.R.EvalVec(b, rv)

	if a.typ == sqltypes.Float64 {
		lf := asF64(lv, n)
		rf := asF64(rv, n)
		o := out.F64[:n]
		switch a.Op {
		case Add:
			for i := range o {
				o[i] = lf[i] + rf[i]
			}
		case Sub:
			for i := range o {
				o[i] = lf[i] - rf[i]
			}
		case Mul:
			for i := range o {
				o[i] = lf[i] * rf[i]
			}
		case Div:
			for i := range o {
				if rf[i] == 0 {
					out.SetNull(i)
				} else {
					o[i] = lf[i] / rf[i]
				}
			}
		default:
			for i := range o {
				if rf[i] == 0 {
					out.SetNull(i)
				} else {
					o[i] = float64(int64(lf[i]) % int64(rf[i]))
				}
			}
		}
	} else {
		li := lv.I64[:n]
		ri := rv.I64[:n]
		o := out.I64[:n]
		switch a.Op {
		case Add:
			for i := range o {
				o[i] = li[i] + ri[i]
			}
		case Sub:
			for i := range o {
				o[i] = li[i] - ri[i]
			}
		case Mul:
			for i := range o {
				o[i] = li[i] * ri[i]
			}
		case Div:
			for i := range o {
				if ri[i] == 0 {
					out.SetNull(i)
				} else {
					o[i] = li[i] / ri[i]
				}
			}
		default:
			for i := range o {
				if ri[i] == 0 {
					out.SetNull(i)
				} else {
					o[i] = li[i] % ri[i]
				}
			}
		}
	}
	propagateNulls(lv, n, out)
	propagateNulls(rv, n, out)
}

// asF64 views a vector's numeric payload as float64s, converting ints.
func asF64(v *vector.Vector, n int) []float64 {
	if v.Typ == sqltypes.Float64 {
		return v.F64[:n]
	}
	out := make([]float64, n)
	for i, x := range v.I64[:n] {
		out[i] = float64(x)
	}
	return out
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// --- NULL tests ---

// IsNull tests (or, negated, rejects) NULL.
type IsNull struct {
	E      Expr
	Negate bool // IS NOT NULL
}

// NewIsNull builds an IS [NOT] NULL test.
func NewIsNull(e Expr, negate bool) *IsNull { return &IsNull{E: e, Negate: negate} }

// Type implements Expr.
func (x *IsNull) Type() sqltypes.Type { return sqltypes.Bool }

// Eval implements Expr.
func (x *IsNull) Eval(row sqltypes.Row) sqltypes.Value {
	v := x.E.Eval(row)
	return sqltypes.NewBool(v.Null != x.Negate)
}

// EvalVec implements Expr.
func (x *IsNull) EvalVec(b *vector.Batch, out *vector.Vector) {
	n := b.NumRows()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	tmp := vector.NewVector(x.E.Type(), n)
	x.E.EvalVec(b, tmp)
	for i := 0; i < n; i++ {
		out.I64[i] = b2i(tmp.IsNull(i) != x.Negate)
	}
}

func (x *IsNull) String() string {
	if x.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", x.E)
	}
	return fmt.Sprintf("(%s IS NULL)", x.E)
}

// --- IN lists ---

// InList tests membership in a constant list; NULL input yields NULL.
type InList struct {
	E    Expr
	Vals []sqltypes.Value
}

// NewInList builds an IN (...) test over constants.
func NewInList(e Expr, vals []sqltypes.Value) *InList { return &InList{E: e, Vals: vals} }

// Type implements Expr.
func (x *InList) Type() sqltypes.Type { return sqltypes.Bool }

func (x *InList) contains(v sqltypes.Value) bool {
	for _, c := range x.Vals {
		if !c.Null && sqltypes.Compare(v, c) == 0 {
			return true
		}
	}
	return false
}

// Eval implements Expr.
func (x *InList) Eval(row sqltypes.Row) sqltypes.Value {
	v := x.E.Eval(row)
	if v.Null {
		return sqltypes.NewNull(sqltypes.Bool)
	}
	return sqltypes.NewBool(x.contains(v))
}

// EvalVec implements Expr.
func (x *InList) EvalVec(b *vector.Batch, out *vector.Vector) {
	n := b.NumRows()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	tmp := vector.NewVector(x.E.Type(), n)
	x.E.EvalVec(b, tmp)
	if tmp.IsCoded() {
		// Translate the IN list to code space once: membership becomes a
		// lookup in a small code set, with no per-row decode.
		codeSet := make(map[uint64]bool, len(x.Vals))
		for _, c := range x.Vals {
			if c.Null || c.Typ != sqltypes.String {
				continue
			}
			if id, ok := tmp.Dict.Lookup(c.S); ok && int(id) < len(tmp.DictVals) {
				codeSet[uint64(id)] = true
			}
		}
		for i := 0; i < n; i++ {
			if tmp.IsNull(i) {
				out.SetNull(i)
				continue
			}
			out.I64[i] = b2i(codeSet[tmp.Codes[i]])
		}
		return
	}
	for i := 0; i < n; i++ {
		if tmp.IsNull(i) {
			out.SetNull(i)
			continue
		}
		out.I64[i] = b2i(x.contains(tmp.Value(i)))
	}
}

func (x *InList) String() string {
	parts := make([]string, len(x.Vals))
	for i, v := range x.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("(%s IN (%v))", x.E, parts)
}

// --- LIKE ---

// Like matches SQL LIKE patterns with % (any run) and _ (any one char).
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
}

// NewLike builds a [NOT] LIKE test.
func NewLike(e Expr, pattern string, negate bool) *Like {
	return &Like{E: e, Pattern: pattern, Negate: negate}
}

// Type implements Expr.
func (x *Like) Type() sqltypes.Type { return sqltypes.Bool }

// Eval implements Expr.
func (x *Like) Eval(row sqltypes.Row) sqltypes.Value {
	v := x.E.Eval(row)
	if v.Null {
		return sqltypes.NewNull(sqltypes.Bool)
	}
	return sqltypes.NewBool(likeMatch(v.S, x.Pattern) != x.Negate)
}

// EvalVec implements Expr.
func (x *Like) EvalVec(b *vector.Batch, out *vector.Vector) {
	n := b.NumRows()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	tmp := vector.NewVector(sqltypes.String, n)
	x.E.EvalVec(b, tmp)
	if tmp.IsCoded() {
		// Evaluate the pattern at most once per distinct dictionary entry
		// (memo: 0 = unevaluated, 1 = match, 2 = no match).
		memo := make([]int8, len(tmp.DictVals))
		for i := 0; i < n; i++ {
			if tmp.IsNull(i) {
				out.SetNull(i)
				continue
			}
			c := tmp.Codes[i]
			m := memo[c]
			if m == 0 {
				if likeMatch(tmp.DictVals[c], x.Pattern) != x.Negate {
					m = 1
				} else {
					m = 2
				}
				memo[c] = m
			}
			out.I64[i] = b2i(m == 1)
		}
		return
	}
	for i := 0; i < n; i++ {
		if tmp.IsNull(i) {
			out.SetNull(i)
			continue
		}
		out.I64[i] = b2i(likeMatch(tmp.Str[i], x.Pattern) != x.Negate)
	}
}

// likeMatch implements LIKE with an iterative two-pointer algorithm
// (greedy % with backtracking), O(len(s)*len(p)) worst case.
func likeMatch(s, p string) bool {
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, match = pi, si
			pi++
		case star >= 0:
			match++
			si, pi = match, star+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

func (x *Like) String() string {
	op := "LIKE"
	if x.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s '%s')", x.E, op, x.Pattern)
}

// --- Date extraction functions ---

// DateFunc extracts a component of a Date value.
type DateFunc struct {
	Name string // "YEAR", "MONTH", "DAY"
	E    Expr
}

// NewDateFunc builds a YEAR/MONTH/DAY extraction. Unknown names are rejected
// by the binder before construction.
func NewDateFunc(name string, e Expr) *DateFunc { return &DateFunc{Name: name, E: e} }

// Type implements Expr.
func (d *DateFunc) Type() sqltypes.Type { return sqltypes.Int64 }

func extractDate(name string, days int64) int64 {
	t := time.Unix(days*86400, 0).UTC()
	switch name {
	case "YEAR":
		return int64(t.Year())
	case "MONTH":
		return int64(t.Month())
	default: // DAY
		return int64(t.Day())
	}
}

// Eval implements Expr.
func (d *DateFunc) Eval(row sqltypes.Row) sqltypes.Value {
	v := d.E.Eval(row)
	if v.Null {
		return sqltypes.NewNull(sqltypes.Int64)
	}
	return sqltypes.NewInt(extractDate(d.Name, v.I))
}

// EvalVec implements Expr.
func (d *DateFunc) EvalVec(b *vector.Batch, out *vector.Vector) {
	n := b.NumRows()
	out.Resize(n)
	if out.Nulls != nil {
		out.Nulls.Reset()
	}
	tmp := vector.NewVector(sqltypes.Date, n)
	d.E.EvalVec(b, tmp)
	for i := 0; i < n; i++ {
		if tmp.IsNull(i) {
			out.SetNull(i)
			continue
		}
		out.I64[i] = extractDate(d.Name, tmp.I64[i])
	}
}

func (d *DateFunc) String() string { return fmt.Sprintf("%s(%s)", d.Name, d.E) }
