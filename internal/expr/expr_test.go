package expr

import (
	"math/rand"
	"testing"

	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

func schema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Typ: sqltypes.Int64, Nullable: true},
		sqltypes.Column{Name: "b", Typ: sqltypes.Float64, Nullable: true},
		sqltypes.Column{Name: "s", Typ: sqltypes.String, Nullable: true},
		sqltypes.Column{Name: "d", Typ: sqltypes.Date, Nullable: true},
	)
}

func colA() *ColRef { return NewColRef(0, "a", sqltypes.Int64) }
func colB() *ColRef { return NewColRef(1, "b", sqltypes.Float64) }
func colS() *ColRef { return NewColRef(2, "s", sqltypes.String) }
func colD() *ColRef { return NewColRef(3, "d", sqltypes.Date) }

func ci(v int64) *Const   { return NewConst(sqltypes.NewInt(v)) }
func cf(v float64) *Const { return NewConst(sqltypes.NewFloat(v)) }
func cs(v string) *Const  { return NewConst(sqltypes.NewString(v)) }

// randomBatch builds a batch (and matching rows) with some NULLs.
func randomBatch(n int, seed int64) (*vector.Batch, []sqltypes.Row) {
	rng := rand.New(rand.NewSource(seed))
	b := vector.NewBatch(schema(), n)
	rows := make([]sqltypes.Row, n)
	strs := []string{"apple", "banana", "cherry", "date", ""}
	for i := 0; i < n; i++ {
		row := sqltypes.Row{
			sqltypes.NewInt(int64(rng.Intn(20) - 10)),
			sqltypes.NewFloat(float64(rng.Intn(100)) / 4),
			sqltypes.NewString(strs[rng.Intn(len(strs))]),
			sqltypes.NewDate(int64(rng.Intn(20000))),
		}
		for j := range row {
			if rng.Intn(10) == 0 {
				row[j] = sqltypes.NewNull(row[j].Typ)
			}
		}
		rows[i] = row
		b.AppendRow(row)
	}
	return b, rows
}

// checkRowVecAgree asserts Eval and EvalVec agree on every row.
func checkRowVecAgree(t *testing.T, e Expr, b *vector.Batch, rows []sqltypes.Row) {
	t.Helper()
	out := vector.NewVector(e.Type(), b.NumRows())
	e.EvalVec(b, out)
	for i, row := range rows {
		want := e.Eval(row)
		got := out.Value(i)
		if want.Null != got.Null {
			t.Fatalf("%s row %d (%v): null mismatch: vec=%v row=%v", e, i, row, got, want)
		}
		if !want.Null && sqltypes.Compare(want, got) != 0 {
			t.Fatalf("%s row %d (%v): vec=%v row=%v", e, i, row, got, want)
		}
	}
}

func TestRowVecAgreement(t *testing.T) {
	b, rows := randomBatch(500, 42)
	exprs := []Expr{
		colA(),
		ci(7),
		NewCmp(EQ, colA(), ci(3)),
		NewCmp(NE, colA(), ci(0)),
		NewCmp(LT, colA(), ci(0)),
		NewCmp(LE, colB(), cf(10)),
		NewCmp(GT, colB(), cf(12.5)),
		NewCmp(GE, colS(), cs("banana")),
		NewCmp(EQ, colS(), cs("apple")),
		NewCmp(LT, colA(), colB()), // column vs column
		NewCmp(GT, ci(5), colA()),  // const on the left
		NewCmp(EQ, colB(), ci(5)),  // float col vs int const
		NewAnd(NewCmp(GT, colA(), ci(-5)), NewCmp(LT, colA(), ci(5))),
		NewOr(NewCmp(EQ, colS(), cs("apple")), NewCmp(EQ, colS(), cs("cherry"))),
		NewNot(NewCmp(EQ, colA(), ci(1))),
		NewAnd(NewCmp(GT, colA(), ci(0)), NewOr(NewCmp(LT, colB(), cf(5)), NewIsNull(colS(), false))),
		NewArith(Add, colA(), ci(10)),
		NewArith(Sub, colA(), colA()),
		NewArith(Mul, colB(), cf(2)),
		NewArith(Div, colB(), colA()), // div by zero -> NULL
		NewArith(Div, colA(), ci(0)),
		NewArith(Mod, colA(), ci(3)),
		NewArith(Add, colA(), colB()), // mixed int/float
		NewIsNull(colA(), false),
		NewIsNull(colA(), true),
		NewInList(colA(), []sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NewInt(3)}),
		NewInList(colS(), []sqltypes.Value{sqltypes.NewString("apple"), sqltypes.NewString("date")}),
		NewLike(colS(), "a%", false),
		NewLike(colS(), "%an%", false),
		NewLike(colS(), "_a%", true),
		NewDateFunc("YEAR", colD()),
		NewDateFunc("MONTH", colD()),
		NewDateFunc("DAY", colD()),
	}
	for _, e := range exprs {
		checkRowVecAgree(t, e, b, rows)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := sqltypes.NewNull(sqltypes.Bool)
	tr := sqltypes.NewBool(true)
	fa := sqltypes.NewBool(false)
	lit := func(v sqltypes.Value) Expr { return NewConst(v) }

	cases := []struct {
		e    Expr
		want sqltypes.Value
	}{
		{NewAnd(lit(tr), lit(null)), null},
		{NewAnd(lit(fa), lit(null)), fa},
		{NewAnd(lit(tr), lit(tr)), tr},
		{NewOr(lit(fa), lit(null)), null},
		{NewOr(lit(tr), lit(null)), tr},
		{NewOr(lit(fa), lit(fa)), fa},
		{NewNot(lit(null)), null},
		{NewNot(lit(tr)), fa},
		{NewCmp(EQ, lit(null), lit(tr)), null},
	}
	for _, c := range cases {
		got := c.e.Eval(nil)
		if got.Null != c.want.Null || (!got.Null && got.I != c.want.I) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestApplyFilter(t *testing.T) {
	b, rows := randomBatch(300, 7)
	pred := NewAnd(NewCmp(GT, colA(), ci(0)), NewCmp(LT, colB(), cf(15)))
	ApplyFilter(pred, b)
	want := 0
	for _, r := range rows {
		v := pred.Eval(r)
		if !v.Null && v.I != 0 {
			want++
		}
	}
	if b.Len() != want {
		t.Fatalf("filter kept %d, want %d", b.Len(), want)
	}
	for i := 0; i < b.Len(); i++ {
		row := b.Row(i)
		v := pred.Eval(row)
		if v.Null || v.I == 0 {
			t.Fatalf("non-qualifying row survived: %v", row)
		}
	}
	// Second filter narrows the existing selection.
	before := b.Len()
	ApplyFilter(NewCmp(LT, colA(), ci(5)), b)
	if b.Len() > before {
		t.Fatal("filter grew selection")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_l_o", true},
		{"hello", "h_l_x", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "%%", true},
		{"abc", "a%b%c", true},
		{"abc", "a%d", false},
		{"aaa", "a%a", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestConjuncts(t *testing.T) {
	e := NewAnd(
		NewCmp(EQ, colA(), ci(1)),
		NewAnd(NewCmp(GT, colB(), cf(2)), NewCmp(LT, colB(), cf(9))),
	)
	cj := Conjuncts(e)
	if len(cj) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(cj))
	}
	if len(Conjuncts(NewCmp(EQ, colA(), ci(1)))) != 1 {
		t.Fatal("single conjunct wrong")
	}
}

func TestColRange(t *testing.T) {
	cases := []struct {
		e          Expr
		wantLoNull bool
		wantHiNull bool
		lo, hi     int64
		ok         bool
	}{
		{NewCmp(EQ, colA(), ci(5)), false, false, 5, 5, true},
		{NewCmp(LT, colA(), ci(5)), true, false, 0, 5, true},
		{NewCmp(GE, colA(), ci(5)), false, true, 5, 0, true},
		{NewCmp(GT, ci(5), colA()), true, false, 0, 5, true}, // 5 > a  =>  a < 5
		{NewCmp(NE, colA(), ci(5)), false, false, 0, 0, false},
		{NewCmp(EQ, colB(), cf(1)), false, false, 0, 0, false}, // wrong column
		{NewIsNull(colA(), false), false, false, 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, ok := ColRange(c.e, 0)
		if ok != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.e, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if lo.Null != c.wantLoNull || hi.Null != c.wantHiNull {
			t.Errorf("%s: bounds null = %v/%v", c.e, lo.Null, hi.Null)
			continue
		}
		if !lo.Null && lo.I != c.lo || !hi.Null && hi.I != c.hi {
			t.Errorf("%s: bounds = %v..%v", c.e, lo, hi)
		}
	}
}

func TestRemap(t *testing.T) {
	e := NewAnd(NewCmp(EQ, colA(), ci(1)), NewCmp(GT, colB(), cf(2)))
	m := Remap(e, map[int]int{0: 5, 1: 6})
	set := map[int]bool{}
	ReferencedCols(m, set)
	if !set[5] || !set[6] || set[0] || set[1] {
		t.Fatalf("remapped refs = %v", set)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for uncovered column")
		}
	}()
	Remap(colA(), map[int]int{9: 1})
}

func TestReferencedCols(t *testing.T) {
	e := NewOr(
		NewLike(colS(), "x%", false),
		NewInList(NewDateFunc("YEAR", colD()), []sqltypes.Value{sqltypes.NewInt(1994)}),
	)
	set := map[int]bool{}
	ReferencedCols(e, set)
	if !set[2] || !set[3] || len(set) != 2 {
		t.Fatalf("refs = %v", set)
	}
}
