package expr

import (
	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

// ApplyFilter narrows the batch's qualifying-rows selection to rows where
// pred evaluates to true (NULL and false both disqualify). This is the batch
// filter primitive of §5: data never moves, only the selection shrinks.
func ApplyFilter(pred Expr, b *vector.Batch) {
	n := b.NumRows()
	if n == 0 {
		return
	}
	out := vector.NewVector(sqltypes.Bool, n)
	pred.EvalVec(b, out)
	qualifies := func(i int) bool { return !out.IsNull(i) && out.I64[i] != 0 }
	if b.Sel == nil {
		sel := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if qualifies(i) {
				sel = append(sel, i)
			}
		}
		b.Sel = sel
		return
	}
	keep := b.Sel[:0]
	for _, i := range b.Sel {
		if qualifies(i) {
			keep = append(keep, i)
		}
	}
	b.Sel = keep
}

// Conjuncts flattens nested ANDs into a list of conjuncts.
func Conjuncts(e Expr) []Expr {
	if l, ok := e.(*Logic); ok && l.Op == And {
		var out []Expr
		for _, k := range l.Kids {
			out = append(out, Conjuncts(k)...)
		}
		return out
	}
	return []Expr{e}
}

// ColRange inspects a single conjunct and, when it is a comparison between
// column colIdx and a constant, returns the implied [lo, hi] bounds (NULL
// meaning unbounded). The planner combines these into segment-elimination
// ranges and encoded-domain filters.
func ColRange(e Expr, colIdx int) (lo, hi sqltypes.Value, ok bool) {
	c, isCmp := e.(*Cmp)
	if !isCmp {
		return
	}
	col, colOK := c.L.(*ColRef)
	k, constOK := c.R.(*Const)
	op := c.Op
	if !colOK || !constOK {
		// Try the reversed orientation: const OP col.
		col, colOK = c.R.(*ColRef)
		k, constOK = c.L.(*Const)
		if !colOK || !constOK {
			return
		}
		// Mirror the operator.
		switch op {
		case LT:
			op = GT
		case LE:
			op = GE
		case GT:
			op = LT
		case GE:
			op = LE
		}
	}
	if col.Idx != colIdx || k.Val.Null {
		return
	}
	unbounded := sqltypes.NewNull(k.Val.Typ)
	switch op {
	case EQ:
		return k.Val, k.Val, true
	case LT, LE:
		// Treat strict bounds as inclusive for elimination purposes: a
		// superset range never eliminates a qualifying segment.
		return unbounded, k.Val, true
	case GT, GE:
		return k.Val, unbounded, true
	default: // NE constrains nothing for elimination
		return
	}
}

// StrictColRange is ColRange but also reports whether each bound is
// exclusive, for callers that can handle open intervals (code-space filters).
func StrictColRange(e Expr, colIdx int) (lo, hi sqltypes.Value, loOpen, hiOpen, ok bool) {
	c, isCmp := e.(*Cmp)
	if !isCmp {
		return
	}
	col, colOK := c.L.(*ColRef)
	k, constOK := c.R.(*Const)
	op := c.Op
	if !colOK || !constOK {
		col, colOK = c.R.(*ColRef)
		k, constOK = c.L.(*Const)
		if !colOK || !constOK {
			return
		}
		switch op {
		case LT:
			op = GT
		case LE:
			op = GE
		case GT:
			op = LT
		case GE:
			op = LE
		}
	}
	if col.Idx != colIdx || k.Val.Null {
		return
	}
	unbounded := sqltypes.NewNull(k.Val.Typ)
	switch op {
	case EQ:
		return k.Val, k.Val, false, false, true
	case LT:
		return unbounded, k.Val, false, true, true
	case LE:
		return unbounded, k.Val, false, false, true
	case GT:
		return k.Val, unbounded, true, false, true
	case GE:
		return k.Val, unbounded, false, false, true
	default:
		return
	}
}

// ReferencedCols appends the column indexes referenced by e to set.
func ReferencedCols(e Expr, set map[int]bool) {
	switch x := e.(type) {
	case *ColRef:
		set[x.Idx] = true
	case *Const, *Param:
	case *Cmp:
		ReferencedCols(x.L, set)
		ReferencedCols(x.R, set)
	case *Logic:
		for _, k := range x.Kids {
			ReferencedCols(k, set)
		}
	case *Arith:
		ReferencedCols(x.L, set)
		ReferencedCols(x.R, set)
	case *IsNull:
		ReferencedCols(x.E, set)
	case *InList:
		ReferencedCols(x.E, set)
	case *Like:
		ReferencedCols(x.E, set)
	case *DateFunc:
		ReferencedCols(x.E, set)
	}
}

// Remap rewrites column references through mapping (old index -> new index),
// returning a new expression tree. Unmapped references panic: the planner
// must only remap expressions it knows are covered.
func Remap(e Expr, mapping map[int]int) Expr {
	switch x := e.(type) {
	case *ColRef:
		ni, ok := mapping[x.Idx]
		if !ok {
			panic("expr: Remap of uncovered column")
		}
		return &ColRef{Idx: ni, Name: x.Name, Typ: x.Typ}
	case *Const:
		return x
	case *Param:
		// Return the same cell so every copy of a compiled plan sees the
		// value bound for the next execution.
		return x
	case *Cmp:
		return &Cmp{Op: x.Op, L: Remap(x.L, mapping), R: Remap(x.R, mapping)}
	case *Logic:
		kids := make([]Expr, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = Remap(k, mapping)
		}
		return &Logic{Op: x.Op, Kids: kids}
	case *Arith:
		return &Arith{Op: x.Op, L: Remap(x.L, mapping), R: Remap(x.R, mapping), typ: x.typ}
	case *IsNull:
		return &IsNull{E: Remap(x.E, mapping), Negate: x.Negate}
	case *InList:
		return &InList{E: Remap(x.E, mapping), Vals: x.Vals}
	case *Like:
		return &Like{E: Remap(x.E, mapping), Pattern: x.Pattern, Negate: x.Negate}
	case *DateFunc:
		return &DateFunc{Name: x.Name, E: Remap(x.E, mapping)}
	default:
		panic("expr: Remap of unknown expression")
	}
}
