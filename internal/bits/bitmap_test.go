package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(0)
	if b.Get(5) {
		t.Fatal("empty bitmap reports bit set")
	}
	b.Set(5)
	if !b.Get(5) {
		t.Fatal("bit 5 not set")
	}
	b.Set(1000) // forces growth
	if !b.Get(1000) || !b.Get(5) {
		t.Fatal("growth lost bits")
	}
	b.Clear(5)
	if b.Get(5) {
		t.Fatal("bit 5 not cleared")
	}
	b.Clear(1 << 20) // beyond capacity: no-op
	if got := b.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestGetNegative(t *testing.T) {
	b := New(64)
	if b.Get(-1) {
		t.Fatal("negative position must report false")
	}
}

func TestCountAnyReset(t *testing.T) {
	b := New(128)
	if b.Any() {
		t.Fatal("fresh bitmap reports Any")
	}
	for _, i := range []int{0, 63, 64, 127} {
		b.Set(i)
	}
	if got := b.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if !b.Any() {
		t.Fatal("Any = false with set bits")
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSetOps(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(90)

	u := a.Clone()
	u.Or(b)
	for _, i := range []int{1, 70, 90} {
		if !u.Get(i) {
			t.Fatalf("union missing bit %d", i)
		}
	}

	in := a.Clone()
	in.And(b)
	if !in.Get(70) || in.Get(1) || in.Get(90) {
		t.Fatal("intersection wrong")
	}

	d := a.Clone()
	d.AndNot(b)
	if !d.Get(1) || d.Get(70) {
		t.Fatal("difference wrong")
	}
}

func TestOrGrows(t *testing.T) {
	a := New(64)
	b := New(256)
	b.Set(200)
	a.Or(b)
	if !a.Get(200) {
		t.Fatal("Or did not grow receiver")
	}
}

func TestAndShorterOther(t *testing.T) {
	a := New(256)
	a.Set(10)
	a.Set(200)
	b := New(64)
	b.Set(10)
	a.And(b)
	if !a.Get(10) || a.Get(200) {
		t.Fatal("And with shorter operand must clear high bits")
	}
}

func TestNextSet(t *testing.T) {
	b := New(256)
	for _, i := range []int{3, 64, 130} {
		b.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130}, {131, -1}, {-5, 3},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestForEach(t *testing.T) {
	b := New(200)
	want := []int{0, 17, 63, 64, 150}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	b.ForEach(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

// Property: a Bitmap behaves like a set of ints under random Set/Clear.
func TestQuickAgainstMapOracle(t *testing.T) {
	f := func(ops []uint16, clears []uint16) bool {
		b := New(0)
		oracle := map[int]bool{}
		for _, o := range ops {
			b.Set(int(o))
			oracle[int(o)] = true
		}
		for _, c := range clears {
			b.Clear(int(c))
			delete(oracle, int(c))
		}
		if b.Count() != len(oracle) {
			return false
		}
		for k := range oracle {
			if !b.Get(k) {
				return false
			}
		}
		ok := true
		b.ForEach(func(i int) bool {
			if !oracle[i] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextSet iteration agrees with ForEach.
func TestQuickNextSetMatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := New(0)
		for i := 0; i < 100; i++ {
			b.Set(rng.Intn(4096))
		}
		var viaForEach []int
		b.ForEach(func(i int) bool { viaForEach = append(viaForEach, i); return true })
		var viaNext []int
		for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
			viaNext = append(viaNext, i)
		}
		if len(viaForEach) != len(viaNext) {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial, len(viaForEach), len(viaNext))
		}
		for i := range viaNext {
			if viaNext[i] != viaForEach[i] {
				t.Fatalf("trial %d: iteration mismatch at %d", trial, i)
			}
		}
	}
}
