// Package bits provides a dense, growable bitmap used throughout the engine:
// null bitmaps in column vectors, delete bitmaps over row groups, qualifying-row
// masks in batch processing, and Bloom filter backing storage.
package bits

import (
	"fmt"
	"math/bits"
)

// Bitmap is a dense bitmap over non-negative integer positions. The zero value
// is an empty bitmap ready for use. Bitmap grows on Set; Get beyond the current
// capacity reports false.
type Bitmap struct {
	words []uint64
}

// New returns a bitmap pre-sized to hold at least n bits.
func New(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64)}
}

// FromWords constructs a bitmap that aliases the given word slice.
// The caller must not modify words afterwards.
func FromWords(words []uint64) *Bitmap { return &Bitmap{words: words} }

// Words exposes the underlying word storage (little-endian bit order within
// each word). The returned slice aliases the bitmap.
func (b *Bitmap) Words() []uint64 { return b.words }

// Len reports the bitmap's current capacity in bits.
func (b *Bitmap) Len() int { return len(b.words) * 64 }

func (b *Bitmap) grow(i int) {
	need := i/64 + 1
	if need <= len(b.words) {
		return
	}
	words := make([]uint64, max(need, 2*len(b.words)))
	copy(words, b.words)
	b.words = words
}

// Set sets bit i, growing the bitmap if needed.
func (b *Bitmap) Set(i int) {
	b.grow(i)
	b.words[i/64] |= 1 << uint(i%64)
}

// Clear clears bit i. Clearing beyond capacity is a no-op.
func (b *Bitmap) Clear(i int) {
	if i/64 < len(b.words) {
		b.words[i/64] &^= 1 << uint(i%64)
	}
}

// Get reports whether bit i is set. Positions beyond capacity report false.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i/64 >= len(b.words) {
		return false
	}
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears all bits without releasing storage.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &Bitmap{words: words}
}

// Or sets b to the union of b and other, growing b if needed.
func (b *Bitmap) Or(other *Bitmap) {
	if len(other.words) > len(b.words) {
		b.grow(len(other.words)*64 - 1)
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b to the intersection of b and other.
func (b *Bitmap) And(other *Bitmap) {
	for i := range b.words {
		if i < len(other.words) {
			b.words[i] &= other.words[i]
		} else {
			b.words[i] = 0
		}
	}
}

// AndNot clears in b every bit set in other.
func (b *Bitmap) AndNot(other *Bitmap) {
	for i := range b.words {
		if i < len(other.words) {
			b.words[i] &^= other.words[i]
		}
	}
}

// NextSet returns the position of the first set bit at or after i, or -1 if
// there is none.
func (b *Bitmap) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	w := i / 64
	if w >= len(b.words) {
		return -1
	}
	// Mask off bits below i in the first word.
	word := b.words[w] &^ ((1 << uint(i%64)) - 1)
	for {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(b.words) {
			return -1
		}
		word = b.words[w]
	}
}

// ForEach calls fn for every set bit in ascending order. If fn returns false,
// iteration stops.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*64 + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// String renders a short human-readable summary, e.g. "Bitmap{count=3 len=128}".
func (b *Bitmap) String() string {
	return fmt.Sprintf("Bitmap{count=%d len=%d}", b.Count(), b.Len())
}

// SizeBytes reports the in-memory size of the bitmap's storage.
func (b *Bitmap) SizeBytes() int { return 8 * len(b.words) }
