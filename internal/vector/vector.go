// Package vector implements the batch-mode row representation of the paper's
// §5: a batch holds roughly a thousand rows as a set of typed column vectors
// plus a "qualifying rows" selection vector. Filters disqualify rows by
// shrinking the selection instead of copying data, so a batch flows through
// an operator pipeline with near-zero per-row overhead.
package vector

import (
	"fmt"

	"apollo/internal/bits"
	"apollo/internal/sqltypes"
)

// DefaultBatchSize is the number of rows per batch. The paper sizes batches
// (~900 rows) so a batch's working set stays cache-resident.
const DefaultBatchSize = 900

// Vector is a typed column of values within a batch. Int64, Bool and Date
// payloads share the I64 slice; nulls are tracked in an optional bitmap.
type Vector struct {
	Typ   sqltypes.Type
	I64   []int64
	F64   []float64
	Str   []string
	Nulls *bits.Bitmap // nil when the vector holds no NULLs
}

// NewVector allocates a vector of the given type with capacity for n rows.
func NewVector(t sqltypes.Type, n int) *Vector {
	v := &Vector{Typ: t}
	switch t {
	case sqltypes.Float64:
		v.F64 = make([]float64, n)
	case sqltypes.String:
		v.Str = make([]string, n)
	default:
		v.I64 = make([]int64, n)
	}
	return v
}

// Resize grows or shrinks the vector's payload to n rows, preserving a prefix.
func (v *Vector) Resize(n int) {
	switch v.Typ {
	case sqltypes.Float64:
		if cap(v.F64) >= n {
			v.F64 = v.F64[:n]
		} else {
			nf := make([]float64, n)
			copy(nf, v.F64)
			v.F64 = nf
		}
	case sqltypes.String:
		if cap(v.Str) >= n {
			v.Str = v.Str[:n]
		} else {
			ns := make([]string, n)
			copy(ns, v.Str)
			v.Str = ns
		}
	default:
		if cap(v.I64) >= n {
			v.I64 = v.I64[:n]
		} else {
			ni := make([]int64, n)
			copy(ni, v.I64)
			v.I64 = ni
		}
	}
}

// Len returns the physical row capacity currently materialized.
func (v *Vector) Len() int {
	switch v.Typ {
	case sqltypes.Float64:
		return len(v.F64)
	case sqltypes.String:
		return len(v.Str)
	default:
		return len(v.I64)
	}
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool { return v.Nulls != nil && v.Nulls.Get(i) }

// SetNull marks row i NULL, allocating the null bitmap on first use.
func (v *Vector) SetNull(i int) {
	if v.Nulls == nil {
		v.Nulls = bits.New(v.Len())
	}
	v.Nulls.Set(i)
}

// ClearNull marks row i non-NULL.
func (v *Vector) ClearNull(i int) {
	if v.Nulls != nil {
		v.Nulls.Clear(i)
	}
}

// HasNulls reports whether any row is NULL.
func (v *Vector) HasNulls() bool { return v.Nulls != nil && v.Nulls.Any() }

// Value materializes row i as a sqltypes.Value.
func (v *Vector) Value(i int) sqltypes.Value {
	if v.IsNull(i) {
		return sqltypes.NewNull(v.Typ)
	}
	switch v.Typ {
	case sqltypes.Float64:
		return sqltypes.Value{Typ: v.Typ, F: v.F64[i]}
	case sqltypes.String:
		return sqltypes.Value{Typ: v.Typ, S: v.Str[i]}
	default:
		return sqltypes.Value{Typ: v.Typ, I: v.I64[i]}
	}
}

// SetValue stores val (which must match the vector's type or be NULL) at row i.
func (v *Vector) SetValue(i int, val sqltypes.Value) {
	if val.Null {
		v.SetNull(i)
		return
	}
	v.ClearNull(i)
	switch v.Typ {
	case sqltypes.Float64:
		v.F64[i] = val.F
	case sqltypes.String:
		v.Str[i] = val.S
	default:
		v.I64[i] = val.I
	}
}

// CopyRow copies row src of from into row dst of v. The vectors must share a
// type.
func (v *Vector) CopyRow(dst int, from *Vector, src int) {
	if from.IsNull(src) {
		v.SetNull(dst)
		return
	}
	v.ClearNull(dst)
	switch v.Typ {
	case sqltypes.Float64:
		v.F64[dst] = from.F64[src]
	case sqltypes.String:
		v.Str[dst] = from.Str[src]
	default:
		v.I64[dst] = from.I64[src]
	}
}

// String summarizes the vector for debugging.
func (v *Vector) String() string {
	return fmt.Sprintf("Vector{%v len=%d nulls=%v}", v.Typ, v.Len(), v.HasNulls())
}
