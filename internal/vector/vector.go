// Package vector implements the batch-mode row representation of the paper's
// §5: a batch holds roughly a thousand rows as a set of typed column vectors
// plus a "qualifying rows" selection vector. Filters disqualify rows by
// shrinking the selection instead of copying data, so a batch flows through
// an operator pipeline with near-zero per-row overhead.
//
// String vectors come in two physical forms. The *materialized* form holds
// per-row Go strings in Str. The *dict-coded* form holds per-row dictionary
// ids in Codes plus a shared *encoding.Dict reference and an id->value
// snapshot; the strings themselves are decoded only when a consumer asks for
// them (late materialization). Operators that understand codes work on the
// Codes payload directly; everything else goes through Value, which decodes
// transparently.
package vector

import (
	"fmt"

	"apollo/internal/bits"
	"apollo/internal/encoding"
	"apollo/internal/sqltypes"
)

// DefaultBatchSize is the number of rows per batch. The paper sizes batches
// (~900 rows) so a batch's working set stays cache-resident.
const DefaultBatchSize = 900

// Vector is a typed column of values within a batch. Int64, Bool and Date
// payloads share the I64 slice; nulls are tracked in an optional bitmap.
//
// A String vector is dict-coded when Dict is non-nil: the payload lives in
// Codes (Str is nil) and row i decodes as DictVals[Codes[i]]. DictVals is a
// stable snapshot of the shared dictionary taken when the vector was coded;
// every code in the vector is < len(DictVals). Codes at NULL rows are
// unspecified and must not be decoded.
type Vector struct {
	Typ      sqltypes.Type
	I64      []int64
	F64      []float64
	Str      []string
	Codes    []uint64       // dict-coded payload; valid iff Dict != nil
	Dict     *encoding.Dict // shared dictionary identity; nil = materialized
	DictVals []string       // id->value snapshot covering every code
	Nulls    *bits.Bitmap   // nil when the vector holds no NULLs
}

// NewVector allocates a vector of the given type with capacity for n rows.
func NewVector(t sqltypes.Type, n int) *Vector {
	v := &Vector{Typ: t}
	switch t {
	case sqltypes.Float64:
		v.F64 = make([]float64, n)
	case sqltypes.String:
		v.Str = make([]string, n)
	default:
		v.I64 = make([]int64, n)
	}
	return v
}

// IsCoded reports whether the vector is in dict-coded form.
func (v *Vector) IsCoded() bool { return v.Dict != nil }

// MakeCoded switches a String vector into dict-coded form with n rows whose
// codes decode through vals (a snapshot of d). Existing string contents are
// discarded; the caller fills Codes.
func (v *Vector) MakeCoded(d *encoding.Dict, vals []string, n int) {
	if v.Typ != sqltypes.String {
		panic("vector: MakeCoded on non-string vector")
	}
	v.Str = nil
	v.Dict = d
	v.DictVals = vals
	if cap(v.Codes) >= n {
		v.Codes = v.Codes[:n]
	} else {
		v.Codes = make([]uint64, n)
	}
}

// Materialize decodes a dict-coded vector into per-row strings. It is a
// no-op on materialized vectors. NULL rows decode to "".
func (v *Vector) Materialize() {
	if !v.IsCoded() {
		return
	}
	n := len(v.Codes)
	s := make([]string, n)
	if v.Nulls != nil && v.Nulls.Any() {
		for i, c := range v.Codes {
			if !v.Nulls.Get(i) {
				s[i] = v.DictVals[c]
			}
		}
	} else {
		for i, c := range v.Codes {
			s[i] = v.DictVals[c]
		}
	}
	v.Str = s
	v.Codes = nil
	v.Dict = nil
	v.DictVals = nil
}

// ClearCoded returns the vector to materialized form WITHOUT decoding; the
// payload contents become undefined. For callers about to overwrite every
// row.
func (v *Vector) ClearCoded() {
	if v.Dict == nil {
		return
	}
	v.Dict = nil
	v.DictVals = nil
	v.Codes = nil
}

// StrAt returns the string at row i, decoding through the dictionary when
// coded. The caller must have checked IsNull(i) first.
func (v *Vector) StrAt(i int) string {
	if v.Dict != nil {
		return v.DictVals[v.Codes[i]]
	}
	return v.Str[i]
}

// growCap doubles cap until it covers n, so repeated Resize(n+1) calls are
// amortized O(1) per row.
func growCap(c, n int) int {
	if c == 0 {
		c = 8
	}
	for c < n {
		c *= 2
	}
	return c
}

// Resize grows or shrinks the vector's payload to n rows, preserving a
// prefix. Growth doubles capacity; shrinking a Str vector zeroes the tail so
// the backing array does not pin truncated strings against the GC.
func (v *Vector) Resize(n int) {
	switch {
	case v.Dict != nil:
		if cap(v.Codes) >= n {
			v.Codes = v.Codes[:n]
		} else {
			nc := make([]uint64, n, growCap(cap(v.Codes), n))
			copy(nc, v.Codes)
			v.Codes = nc
		}
	case v.Typ == sqltypes.Float64:
		if cap(v.F64) >= n {
			v.F64 = v.F64[:n]
		} else {
			nf := make([]float64, n, growCap(cap(v.F64), n))
			copy(nf, v.F64)
			v.F64 = nf
		}
	case v.Typ == sqltypes.String:
		if cap(v.Str) >= n {
			if old := len(v.Str); n < old {
				tail := v.Str[n:old]
				for i := range tail {
					tail[i] = ""
				}
			}
			v.Str = v.Str[:n]
		} else {
			ns := make([]string, n, growCap(cap(v.Str), n))
			copy(ns, v.Str)
			v.Str = ns
		}
	default:
		if cap(v.I64) >= n {
			v.I64 = v.I64[:n]
		} else {
			ni := make([]int64, n, growCap(cap(v.I64), n))
			copy(ni, v.I64)
			v.I64 = ni
		}
	}
}

// Len returns the physical row capacity currently materialized.
func (v *Vector) Len() int {
	switch {
	case v.Dict != nil:
		return len(v.Codes)
	case v.Typ == sqltypes.Float64:
		return len(v.F64)
	case v.Typ == sqltypes.String:
		return len(v.Str)
	default:
		return len(v.I64)
	}
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool { return v.Nulls != nil && v.Nulls.Get(i) }

// SetNull marks row i NULL, allocating the null bitmap on first use.
func (v *Vector) SetNull(i int) {
	if v.Nulls == nil {
		v.Nulls = bits.New(v.Len())
	}
	v.Nulls.Set(i)
}

// ClearNull marks row i non-NULL.
func (v *Vector) ClearNull(i int) {
	if v.Nulls != nil {
		v.Nulls.Clear(i)
	}
}

// HasNulls reports whether any row is NULL.
func (v *Vector) HasNulls() bool { return v.Nulls != nil && v.Nulls.Any() }

// Value materializes row i as a sqltypes.Value, decoding dictionary codes
// lazily.
func (v *Vector) Value(i int) sqltypes.Value {
	if v.IsNull(i) {
		return sqltypes.NewNull(v.Typ)
	}
	switch {
	case v.Dict != nil:
		return sqltypes.Value{Typ: v.Typ, S: v.DictVals[v.Codes[i]]}
	case v.Typ == sqltypes.Float64:
		return sqltypes.Value{Typ: v.Typ, F: v.F64[i]}
	case v.Typ == sqltypes.String:
		return sqltypes.Value{Typ: v.Typ, S: v.Str[i]}
	default:
		return sqltypes.Value{Typ: v.Typ, I: v.I64[i]}
	}
}

// SetValue stores val (which must match the vector's type or be NULL) at row
// i. Storing a string into a coded vector re-encodes through the dictionary
// when possible and materializes the whole vector otherwise.
func (v *Vector) SetValue(i int, val sqltypes.Value) {
	if val.Null {
		v.SetNull(i)
		return
	}
	v.ClearNull(i)
	switch {
	case v.Dict != nil:
		if id, ok := v.Dict.Lookup(val.S); ok {
			if int(id) >= len(v.DictVals) {
				v.DictVals = v.Dict.SnapshotValues()
			}
			v.Codes[i] = uint64(id)
			return
		}
		v.Materialize()
		v.Str[i] = val.S
	case v.Typ == sqltypes.Float64:
		v.F64[i] = val.F
	case v.Typ == sqltypes.String:
		v.Str[i] = val.S
	default:
		v.I64[i] = val.I
	}
}

// CopyRow copies row src of from into row dst of v. The vectors must share a
// type; coded and materialized string forms are bridged transparently.
func (v *Vector) CopyRow(dst int, from *Vector, src int) {
	if from.IsNull(src) {
		v.SetNull(dst)
		return
	}
	v.ClearNull(dst)
	switch {
	case v.Dict != nil:
		if from.Dict == v.Dict {
			v.Codes[dst] = from.Codes[src]
			return
		}
		v.SetValue(dst, from.Value(src))
	case v.Typ == sqltypes.Float64:
		v.F64[dst] = from.F64[src]
	case v.Typ == sqltypes.String:
		if from.Dict != nil {
			v.Str[dst] = from.DictVals[from.Codes[src]]
			return
		}
		v.Str[dst] = from.Str[src]
	default:
		v.I64[dst] = from.I64[src]
	}
}

// String summarizes the vector for debugging.
func (v *Vector) String() string {
	return fmt.Sprintf("Vector{%v len=%d nulls=%v coded=%v}", v.Typ, v.Len(), v.HasNulls(), v.IsCoded())
}
