package vector

import (
	"fmt"

	"apollo/internal/sqltypes"
)

// Batch is a set of column vectors holding up to ~DefaultBatchSize rows,
// together with a selection vector of qualifying physical row indices.
// A nil Sel means all physical rows 0..NumRows-1 qualify.
type Batch struct {
	Schema *sqltypes.Schema
	Vecs   []*Vector
	Sel    []int // ascending physical indices of qualifying rows; nil = all
	nrows  int   // physical rows materialized in the vectors
}

// NewBatch allocates a batch for schema with capacity rows.
func NewBatch(schema *sqltypes.Schema, capacity int) *Batch {
	b := &Batch{Schema: schema, Vecs: make([]*Vector, schema.Len())}
	for i, c := range schema.Cols {
		b.Vecs[i] = NewVector(c.Typ, capacity)
	}
	return b
}

// NumRows returns the number of physical rows in the batch's vectors.
func (b *Batch) NumRows() int { return b.nrows }

// SetNumRows declares n physical rows, resizing vectors as needed, clearing
// null bitmaps, and clearing the selection (all rows qualify). Call it before
// filling the vectors for a new batch.
func (b *Batch) SetNumRows(n int) {
	for _, v := range b.Vecs {
		if v.Len() != n {
			v.Resize(n)
		}
		if v.Nulls != nil {
			v.Nulls.Reset()
		}
	}
	b.nrows = n
	b.Sel = nil
}

// Len returns the number of qualifying rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.nrows
}

// RowIdx maps qualifying-row ordinal i to a physical row index.
func (b *Batch) RowIdx(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// Reset clears the batch for reuse, keeping allocated storage.
func (b *Batch) Reset() {
	b.nrows = 0
	b.Sel = nil
	for _, v := range b.Vecs {
		if v.Nulls != nil {
			v.Nulls.Reset()
		}
	}
}

// AppendRow appends a materialized row, growing vectors as needed. It clears
// any selection (the appended row qualifies along with all physical rows).
// Vector growth doubles capacity, so appending n rows is O(n) overall rather
// than O(n²) reallocation.
func (b *Batch) AppendRow(row sqltypes.Row) {
	if len(row) != len(b.Vecs) {
		panic(fmt.Sprintf("vector: row width %d, batch width %d", len(row), len(b.Vecs)))
	}
	i := b.nrows
	for c, v := range b.Vecs {
		if v.Len() < i+1 {
			v.Resize(i + 1)
		}
		v.SetValue(i, row[c])
	}
	b.nrows++
	b.Sel = nil
}

// Row materializes qualifying row i as a sqltypes.Row.
func (b *Batch) Row(i int) sqltypes.Row {
	p := b.RowIdx(i)
	row := make(sqltypes.Row, len(b.Vecs))
	for c, v := range b.Vecs {
		row[c] = v.Value(p)
	}
	return row
}

// RowInto materializes qualifying row i into row, which must have the batch's
// width.
func (b *Batch) RowInto(i int, row sqltypes.Row) {
	p := b.RowIdx(i)
	for c, v := range b.Vecs {
		row[c] = v.Value(p)
	}
}

// Compact physically removes disqualified rows so Sel becomes nil. Operators
// that hand vectors to dense kernels (e.g. hash build) call this when the
// selection is sparse.
func (b *Batch) Compact() {
	if b.Sel == nil {
		return
	}
	for _, v := range b.Vecs {
		for dst, src := range b.Sel {
			v.CopyRow(dst, v, src)
		}
		v.Resize(len(b.Sel))
	}
	b.nrows = len(b.Sel)
	b.Sel = nil
}

// MaterializeAll decodes every dict-coded vector in the batch into per-row
// strings. Callers that need dense decoded payloads should Compact first so
// disqualified rows are never decoded.
func (b *Batch) MaterializeAll() {
	for _, v := range b.Vecs {
		v.Materialize()
	}
}

// Project returns a batch exposing only the columns at idx. Vectors are
// shared, not copied; the selection is shared too.
func (b *Batch) Project(idx []int) *Batch {
	out := &Batch{
		Schema: b.Schema.Project(idx),
		Vecs:   make([]*Vector, len(idx)),
		Sel:    b.Sel,
		nrows:  b.nrows,
	}
	for i, j := range idx {
		out.Vecs[i] = b.Vecs[j]
	}
	return out
}

// String summarizes the batch for debugging.
func (b *Batch) String() string {
	return fmt.Sprintf("Batch{rows=%d qualifying=%d cols=%d}", b.nrows, b.Len(), len(b.Vecs))
}

// SetRowCountNoReset declares n physical rows without resizing vectors or
// clearing null bitmaps — for callers that assembled the vectors themselves.
func (b *Batch) SetRowCountNoReset(n int) {
	b.nrows = n
	b.Sel = nil
}
