package vector

import (
	"testing"

	"apollo/internal/sqltypes"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "b", Typ: sqltypes.Float64, Nullable: true},
		sqltypes.Column{Name: "c", Typ: sqltypes.String},
	)
}

func TestVectorSetGet(t *testing.T) {
	for _, typ := range []sqltypes.Type{sqltypes.Int64, sqltypes.Float64, sqltypes.String, sqltypes.Bool, sqltypes.Date} {
		v := NewVector(typ, 4)
		var want sqltypes.Value
		switch typ {
		case sqltypes.Float64:
			want = sqltypes.NewFloat(2.5)
		case sqltypes.String:
			want = sqltypes.NewString("x")
		case sqltypes.Bool:
			want = sqltypes.NewBool(true)
		case sqltypes.Date:
			want = sqltypes.NewDate(100)
		default:
			want = sqltypes.NewInt(-9)
		}
		v.SetValue(2, want)
		if got := v.Value(2); sqltypes.Compare(got, want) != 0 {
			t.Errorf("%v: got %v, want %v", typ, got, want)
		}
		v.SetNull(2)
		if !v.Value(2).Null {
			t.Errorf("%v: null not set", typ)
		}
		v.SetValue(2, want) // overwrite clears null
		if v.Value(2).Null {
			t.Errorf("%v: overwrite did not clear null", typ)
		}
	}
}

func TestVectorResizePreservesPrefix(t *testing.T) {
	v := NewVector(sqltypes.Int64, 2)
	v.I64[0], v.I64[1] = 7, 8
	v.Resize(10)
	if v.Len() != 10 || v.I64[0] != 7 || v.I64[1] != 8 {
		t.Fatal("resize lost data")
	}
	v.Resize(1)
	if v.Len() != 1 || v.I64[0] != 7 {
		t.Fatal("shrink wrong")
	}
}

func TestBatchAppendAndRow(t *testing.T) {
	b := NewBatch(testSchema(), 0)
	r1 := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewFloat(1.5), sqltypes.NewString("one")}
	r2 := sqltypes.Row{sqltypes.NewInt(2), sqltypes.NewNull(sqltypes.Float64), sqltypes.NewString("two")}
	b.AppendRow(r1)
	b.AppendRow(r2)
	if b.Len() != 2 || b.NumRows() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	got := b.Row(1)
	if got[0].I != 2 || !got[1].Null || got[2].S != "two" {
		t.Fatalf("Row(1) = %v", got)
	}
}

func TestBatchSelection(t *testing.T) {
	b := NewBatch(testSchema(), 0)
	for i := 0; i < 5; i++ {
		b.AppendRow(sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewFloat(float64(i)), sqltypes.NewString("r")})
	}
	b.Sel = []int{1, 3}
	if b.Len() != 2 {
		t.Fatalf("Len with sel = %d", b.Len())
	}
	if b.Row(0)[0].I != 1 || b.Row(1)[0].I != 3 {
		t.Fatal("selection indexing wrong")
	}
	b.Compact()
	if b.Sel != nil || b.NumRows() != 2 {
		t.Fatal("compact wrong")
	}
	if b.Row(0)[0].I != 1 || b.Row(1)[0].I != 3 {
		t.Fatal("compact lost rows")
	}
}

func TestBatchCompactPreservesNulls(t *testing.T) {
	b := NewBatch(testSchema(), 0)
	b.AppendRow(sqltypes.Row{sqltypes.NewInt(0), sqltypes.NewFloat(0), sqltypes.NewString("a")})
	b.AppendRow(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewNull(sqltypes.Float64), sqltypes.NewString("b")})
	b.AppendRow(sqltypes.Row{sqltypes.NewInt(2), sqltypes.NewFloat(2), sqltypes.NewString("c")})
	b.Sel = []int{1, 2}
	b.Compact()
	if !b.Row(0)[1].Null {
		t.Fatal("null lost in compact")
	}
	if b.Row(1)[1].Null {
		t.Fatal("phantom null after compact")
	}
}

func TestBatchProjectSharesVectors(t *testing.T) {
	b := NewBatch(testSchema(), 0)
	b.AppendRow(sqltypes.Row{sqltypes.NewInt(5), sqltypes.NewFloat(5), sqltypes.NewString("five")})
	p := b.Project([]int{2, 0})
	if p.Schema.Cols[0].Name != "c" || p.Len() != 1 {
		t.Fatal("project schema wrong")
	}
	row := p.Row(0)
	if row[0].S != "five" || row[1].I != 5 {
		t.Fatalf("projected row = %v", row)
	}
	// Mutation through the original must be visible (shared storage).
	b.Vecs[0].I64[0] = 42
	if p.Row(0)[1].I != 42 {
		t.Fatal("project copied storage")
	}
}

func TestBatchSetNumRowsClearsStaleNulls(t *testing.T) {
	b := NewBatch(testSchema(), 4)
	b.SetNumRows(4)
	b.Vecs[1].SetNull(3)
	b.SetNumRows(4)
	if b.Vecs[1].IsNull(3) {
		t.Fatal("stale null survived SetNumRows")
	}
}

func TestBatchRowInto(t *testing.T) {
	b := NewBatch(testSchema(), 0)
	b.AppendRow(sqltypes.Row{sqltypes.NewInt(9), sqltypes.NewFloat(9), sqltypes.NewString("nine")})
	row := make(sqltypes.Row, 3)
	b.RowInto(0, row)
	if row[0].I != 9 || row[2].S != "nine" {
		t.Fatalf("RowInto = %v", row)
	}
}

func TestAppendRowWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatch(testSchema(), 0).AppendRow(sqltypes.Row{sqltypes.NewInt(1)})
}
