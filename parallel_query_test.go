package apollo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// parallelParityQueries are the SQL shapes every DOP must answer identically:
// filtered group-bys on integer and string keys, fact-dim joins (inner and
// outer) feeding aggregation, scalar aggregation, a DISTINCT aggregate (which
// the planner must route to the serial aggregation path), UNION ALL, and an
// ordered limited scan. All but the last are compared order-insensitively;
// the ORDER BY query is compared positionally.
var parallelParityQueries = []struct {
	name    string
	sql     string
	ordered bool
}{
	{"group-int", "SELECT fk, COUNT(*), SUM(amount), MIN(amount), MAX(amount) FROM fact WHERE fk < 40 GROUP BY fk", false},
	{"group-string", "SELECT region, COUNT(*), AVG(amount) FROM fact WHERE region <> 'west' GROUP BY region", false},
	{"scalar", "SELECT COUNT(*), SUM(amount) FROM fact", false},
	{"join-agg", "SELECT name, COUNT(*), SUM(amount) FROM fact JOIN dim ON fk = k GROUP BY name", false},
	{"outer-join", "SELECT id, name FROM fact LEFT OUTER JOIN dim ON fk = k WHERE id < 500", false},
	{"distinct-agg", "SELECT region, COUNT(DISTINCT fk) FROM fact GROUP BY region", false},
	{"union-all", "SELECT fk FROM fact WHERE fk < 5 UNION ALL SELECT k FROM dim WHERE k >= 55", false},
	{"order-limit", "SELECT id, region FROM fact WHERE fk = 7 ORDER BY id LIMIT 20", true},
}

// loadParallelFixture opens a DB at the given DOP and loads identical
// deterministic fact/dim tables: multiple row groups, delta rows, NULLs, and a
// dim domain that only partially covers the fact foreign keys (so outer joins
// produce NULL-extended rows).
func loadParallelFixture(t *testing.T, parallel int) *DB {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RowGroupSize = 400
	cfg.BulkLoadThreshold = 100
	cfg.TupleMoverInterval = 0
	cfg.Parallel = parallel
	db := Open(cfg)
	t.Cleanup(db.Close)

	factSchema := &Schema{Cols: []Column{
		{Name: "id", Typ: Int64},
		{Name: "fk", Typ: Int64},
		{Name: "amount", Typ: Float64, Nullable: true},
		{Name: "region", Typ: String},
	}}
	fact, err := db.CreateTable("fact", factSchema)
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"north", "south", "east", "west"}
	rng := rand.New(rand.NewSource(4242))
	rows := make([]Row, 6000)
	for i := range rows {
		amount := NewFloat(float64(rng.Intn(100000)) / 100)
		if rng.Intn(20) == 0 {
			amount = NewNull(Float64)
		}
		rows[i] = Row{NewInt(int64(i)), NewInt(int64(rng.Intn(80))), amount, NewString(regions[rng.Intn(len(regions))])}
	}
	split := len(rows) * 9 / 10
	if err := fact.BulkLoad(rows[:split]); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[split:] {
		if err := fact.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	dimSchema := &Schema{Cols: []Column{
		{Name: "k", Typ: Int64},
		{Name: "name", Typ: String},
	}}
	dim, err := db.CreateTable("dim", dimSchema)
	if err != nil {
		t.Fatal(err)
	}
	dimRows := make([]Row, 60) // fks 60..79 have no dim row
	for i := range dimRows {
		dimRows[i] = Row{NewInt(int64(i)), NewString(fmt.Sprintf("name-%02d", i%7))}
	}
	if err := dim.BulkLoad(dimRows); err != nil {
		t.Fatal(err)
	}
	return db
}

// resultMultiset canonicalizes a result for order-insensitive comparison.
// Floats are rounded to 8 significant digits: parallel partial aggregation
// sums in a different order than the serial plan, so float aggregates
// legitimately differ in the last few ulps.
func resultMultiset(res *Result) map[string]int {
	out := map[string]int{}
	for _, r := range res.Rows {
		key := ""
		for _, v := range r {
			if v.Typ == Float64 && !v.Null && v.F != 0 && !math.IsNaN(v.F) && !math.IsInf(v.F, 0) {
				scale := math.Pow(10, 8-math.Ceil(math.Log10(math.Abs(v.F))))
				v.F = math.Round(v.F*scale) / scale
			}
			key += v.String() + "|"
		}
		out[key]++
	}
	return out
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestParallelQueryParity runs every query shape at DOP 1, 2, and 8 against
// identical data and requires identical (order-normalized) results.
func TestParallelQueryParity(t *testing.T) {
	serial := loadParallelFixture(t, 1)
	for _, q := range parallelParityQueries {
		want, err := serial.Query(q.sql)
		if err != nil {
			t.Fatalf("%s: serial: %v", q.name, err)
		}
		for _, dop := range []int{2, 8} {
			db := loadParallelFixture(t, dop)
			got, err := db.Query(q.sql)
			if err != nil {
				t.Fatalf("%s dop=%d: %v", q.name, dop, err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("%s dop=%d: %d rows, want %d", q.name, dop, len(got.Rows), len(want.Rows))
			}
			if q.ordered {
				for i := range want.Rows {
					for c := range want.Rows[i] {
						if got.Rows[i][c].String() != want.Rows[i][c].String() {
							t.Fatalf("%s dop=%d: row %d col %d = %v, want %v",
								q.name, dop, i, c, got.Rows[i][c], want.Rows[i][c])
						}
					}
				}
			} else if !sameMultiset(resultMultiset(got), resultMultiset(want)) {
				t.Fatalf("%s dop=%d: result multiset diverged from serial", q.name, dop)
			}
		}
	}
}

// TestParallelQueryOperatorStats asserts a DOP-8 aggregation query surfaces
// merged per-operator stats with multiple active worker replicas.
func TestParallelQueryOperatorStats(t *testing.T) {
	db := loadParallelFixture(t, 8)
	res, err := db.Query("SELECT region, COUNT(*), SUM(amount) FROM fact GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Operators) == 0 {
		t.Fatal("no operator stats on a parallel query")
	}
	byOp := map[string]OperatorStats{}
	for _, os := range res.Operators {
		byOp[os.Op] = os
	}
	agg, ok := byOp["parallelagg"]
	if !ok {
		t.Fatalf("no parallelagg operator in stats: %+v", res.Operators)
	}
	if agg.Rows != 4 {
		t.Fatalf("parallelagg rows = %d, want 4 groups", agg.Rows)
	}
	proj, ok := byOp["project"]
	if !ok {
		t.Fatalf("no project operator in stats: %+v", res.Operators)
	}
	if proj.Workers < 2 {
		t.Fatalf("project ran on %d workers, want replicated (>=2)", proj.Workers)
	}
	// The merged "project" line sums the replicated pipeline projections (all
	// 6000 fact rows split across workers) plus the final output projection
	// over the group rows.
	if proj.Rows < 6000 {
		t.Fatalf("project rows = %d, want >= 6000", proj.Rows)
	}
}

// TestParallelQueryCancellation cancels a DOP-8 GROUP BY over slow cold reads
// mid-pipeline and requires a prompt context.Canceled with no leaked workers.
func TestParallelQueryCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferPoolBytes = 0
	cfg.RowGroupSize = 400
	cfg.BulkLoadThreshold = 100
	cfg.TupleMoverInterval = 0
	cfg.Parallel = 8
	db := Open(cfg)
	defer db.Close()
	tb, err := db.CreateTable("big", &Schema{Cols: []Column{
		{Name: "id", Typ: Int64}, {Name: "g", Typ: Int64}, {Name: "v", Typ: Float64}}})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 8000)
	for i := range rows {
		rows[i] = Row{NewInt(int64(i)), NewInt(int64(i % 31)), NewFloat(float64(i) * 0.25)}
	}
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}

	db.InjectStorageFaults(FaultConfig{ReadLatency: 2 * time.Millisecond})
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(8*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	start := time.Now()
	_, qerr := db.QueryContext(ctx, "SELECT g, COUNT(*), SUM(v) FROM big GROUP BY g")
	if !errors.Is(qerr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", qerr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	waitForGoroutines(t, base)
}

// TestParallelQueryFaultInjection runs a DOP-8 join+aggregation with a 100%
// read-fault rate and requires a prompt typed error and clean worker shutdown.
func TestParallelQueryFaultInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferPoolBytes = 0
	cfg.RowGroupSize = 400
	cfg.BulkLoadThreshold = 100
	cfg.TupleMoverInterval = 0
	cfg.Parallel = 8
	db := Open(cfg)
	defer db.Close()
	tb, err := db.CreateTable("big", &Schema{Cols: []Column{
		{Name: "id", Typ: Int64}, {Name: "g", Typ: Int64}, {Name: "v", Typ: Float64}}})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 4000)
	for i := range rows {
		rows[i] = Row{NewInt(int64(i)), NewInt(int64(i % 13)), NewFloat(float64(i))}
	}
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}

	db.InjectStorageFaults(FaultConfig{ReadErrorRate: 1, Seed: 9})
	base := runtime.NumGoroutine()
	start := time.Now()
	_, qerr := db.Query("SELECT g, COUNT(*) FROM big GROUP BY g")
	if qerr == nil {
		t.Fatal("expected injected read faults to surface")
	}
	if !typedFailure(qerr) {
		t.Fatalf("fault not a typed error: %v", qerr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fault response not prompt: %v", elapsed)
	}
	db.ClearStorageFaults()
	waitForGoroutines(t, base)
}
