package apollo_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apollo"
)

// TestStatementsRacingClose hammers the non-transactional statement paths —
// autocommit Exec, Query, and prepared statements — while DB.Close runs.
// Every statement must either finish cleanly or surface the typed ErrClosed
// (ErrTxnDone for a commit that lost the race); nothing may panic or hang,
// and statements after Close must all fail with ErrClosed at the door. This
// is the plain-statement companion to TestTxnCloseUnderLoad, which covers
// the explicit-transaction paths.
func TestStatementsRacingClose(t *testing.T) {
	cfg := apollo.DefaultConfig()
	cfg.TupleMoverInterval = 5 * time.Millisecond // churn the background path too
	db := apollo.Open(cfg)
	db.MustExec("CREATE TABLE r (w BIGINT, n BIGINT)")
	db.MustExec("INSERT INTO r VALUES (0, 0)")
	prep, err := db.Prepare("INSERT INTO r VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	okErr := func(err error) bool {
		return err == nil || errors.Is(err, apollo.ErrClosed) || errors.Is(err, apollo.ErrTxnDone)
	}
	var unexpected atomic.Value
	var wg sync.WaitGroup
	start := make(chan struct{})
	const workers = 4
	for w := 0; w < workers; w++ {
		w := w
		// Autocommit writer.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for n := 0; ; n++ {
				_, err := db.Exec(fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", w, n))
				if !okErr(err) {
					unexpected.Store(fmt.Errorf("exec writer %d: %w", w, err))
				}
				if err != nil {
					return
				}
			}
		}()
		// Autocommit reader.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				_, err := db.Query("SELECT w, COUNT(*) FROM r GROUP BY w")
				if !okErr(err) {
					unexpected.Store(fmt.Errorf("reader %d: %w", w, err))
				}
				if err != nil {
					return
				}
			}
		}()
		// Prepared-statement writer on its own session.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			sess := db.Session()
			defer sess.Close()
			for n := 0; ; n++ {
				_, err := sess.ExecPrepared(ctx, prep,
					apollo.NewInt(int64(100+w)), apollo.NewInt(int64(n)))
				if !okErr(err) {
					unexpected.Store(fmt.Errorf("prepared writer %d: %w", w, err))
				}
				if err != nil {
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let the statements get going

	done := make(chan struct{})
	go func() { db.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung with statements in flight")
	}
	wg.Wait()
	if err, ok := unexpected.Load().(error); ok && err != nil {
		t.Fatalf("statement saw unexpected error during shutdown: %v", err)
	}

	// After Close every entry point fails with the typed error.
	if _, err := db.Exec("INSERT INTO r VALUES (9, 9)"); !errors.Is(err, apollo.ErrClosed) {
		t.Fatalf("Exec after Close: %v, want ErrClosed", err)
	}
	if _, err := db.Query("SELECT COUNT(*) FROM r"); !errors.Is(err, apollo.ErrClosed) {
		t.Fatalf("Query after Close: %v, want ErrClosed", err)
	}
	sess := db.Session()
	defer sess.Close()
	if _, err := sess.ExecPrepared(ctx, prep, apollo.NewInt(1), apollo.NewInt(1)); !errors.Is(err, apollo.ErrClosed) {
		t.Fatalf("ExecPrepared after Close: %v, want ErrClosed", err)
	}
	if _, err := db.Prepare("SELECT n FROM r"); !errors.Is(err, apollo.ErrClosed) {
		t.Fatalf("Prepare after Close: %v, want ErrClosed", err)
	}
}

// TestRandSeedReproducible pins down Config.RandSeed: a database's derived
// fault-injection seeds must be a pure function of its own seed, unaffected
// by other databases in the process (the global math/rand stream would not
// give this isolation — that was the original bug).
func TestRandSeedReproducible(t *testing.T) {
	derive := func(seed int64, perturb bool) []int64 {
		cfg := apollo.DefaultConfig()
		cfg.RandSeed = seed
		db := apollo.Open(cfg)
		defer db.Close()
		var other *apollo.DB
		if perturb {
			// A sibling database drawing from its own RNG between our
			// draws must not perturb our sequence.
			ocfg := apollo.DefaultConfig()
			ocfg.RandSeed = 999
			other = apollo.Open(ocfg)
			defer other.Close()
		}
		var seeds []int64
		for i := 0; i < 4; i++ {
			seeds = append(seeds, db.InjectStorageFaults(apollo.FaultConfig{}))
			if perturb {
				other.InjectStorageFaults(apollo.FaultConfig{})
			}
		}
		db.ClearStorageFaults()
		return seeds
	}

	a := derive(42, false)
	b := derive(42, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed sequence diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := derive(43, false)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different RandSeed produced identical sequences: %v", a)
	}
}
