package apollo_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"apollo"
	"apollo/internal/wal"
	"apollo/internal/wal/crashtest"
)

// TestMain dispatches harness children: when the crash matrix re-executes
// this test binary with APOLLO_CRASH_CHILD=1, the child runs the scripted
// workload (and dies at its armed crash point) instead of the test suite.
func TestMain(m *testing.M) {
	if crashtest.IsChild() {
		crashtest.RunChild() // exits
	}
	os.Exit(m.Run())
}

// runChild executes the scripted workload in a child process against dir,
// with the WAL armed to crash at byte offset crashAt (0 = run to
// completion). Returns the child's exit code.
func runChild(t *testing.T, dir string, crashAt int64, policy string, extraEnv ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"APOLLO_CRASH_CHILD=1",
		"APOLLO_CRASH_DIR="+dir,
		fmt.Sprintf("APOLLO_CRASH_AT=%d", crashAt),
		"APOLLO_CRASH_FSYNC="+policy,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ee.ExitCode() != 3 { // 3 = armed crash fired, anything else is a bug
			t.Fatalf("child exit %d (crashAt=%d policy=%s):\n%s", ee.ExitCode(), crashAt, policy, out)
		}
		return ee.ExitCode()
	}
	t.Fatalf("child failed to run: %v\n%s", err, out)
	return -1
}

// verifyRecovered recovers dir and checks the committed-prefix property:
// the table state equals the state after exactly K scripted ops for some K.
// K = -1 means the table itself never became durable (the crash hit the
// CREATE TABLE record) — legitimate only when nothing was acknowledged.
func verifyRecovered(t *testing.T, dir, policy string, expected [][32]byte) (int, apollo.RecoveryInfo) {
	t.Helper()
	db, err := apollo.OpenDir(dir, crashtest.Config(policy))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db.Close()
	if _, err := db.Table("k"); err != nil {
		return -1, db.RecoveryInfo()
	}
	sum, rows, err := crashtest.Checksum(db)
	if err != nil {
		t.Fatalf("checksum after recovery: %v", err)
	}
	for k := len(expected) - 1; k >= 0; k-- {
		if expected[k] == sum {
			return k, db.RecoveryInfo()
		}
	}
	t.Fatalf("recovered state (%d rows) matches no prefix of the script — partial or reordered ops survived", rows)
	return -1, apollo.RecoveryInfo{}
}

// TestCrashRecoveryMatrix kills the workload at randomized WAL byte offsets
// and verifies recovery lands on an exact committed prefix every time. Under
// fsync=always the prefix must cover every acknowledged op (zero loss);
// under fsync=interval acknowledged ops may be lost (bounded by the flush
// interval) but the state must still be an exact prefix. Set
// APOLLO_CRASH_FULL=1 for the 64-point matrix (8 by default).
func TestCrashRecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix spawns child processes; skipped in -short")
	}
	points := 8
	if os.Getenv("APOLLO_CRASH_FULL") != "" {
		points = 64
	}
	for _, policy := range []string{"always", "interval"} {
		t.Run("fsync="+policy, func(t *testing.T) {
			expected, err := crashtest.ExpectedChecksums(policy)
			if err != nil {
				t.Fatal(err)
			}
			// Baseline run to completion: no crash, learn the WAL size.
			base := t.TempDir()
			if code := runChild(t, base, 0, policy); code != 0 {
				t.Fatalf("baseline child crashed (exit %d)", code)
			}
			total, err := crashtest.ReadWALTotal(base)
			if err != nil {
				t.Fatal(err)
			}
			if k, _ := verifyRecovered(t, base, policy, expected); k != len(expected)-1 {
				t.Fatalf("crash-free run recovered to prefix %d, want %d", k, len(expected)-1)
			}

			rng := rand.New(rand.NewSource(20130622)) // deterministic matrix
			for i := 0; i < points; i++ {
				crashAt := 17 + rng.Int63n(total-17)
				t.Run(fmt.Sprintf("crashAt=%d", crashAt), func(t *testing.T) {
					dir := t.TempDir()
					if code := runChild(t, dir, crashAt, policy); code != 3 {
						t.Fatalf("child survived armed crash point %d (exit %d)", crashAt, code)
					}
					acked, err := crashtest.ReadProgress(dir)
					if err != nil {
						t.Fatal(err)
					}
					k, _ := verifyRecovered(t, dir, policy, expected)
					if k == -1 {
						if acked != 0 {
							t.Fatalf("table lost after %d acknowledged ops", acked)
						}
						return // crash hit the CREATE TABLE record itself
					}
					if k > acked+1 {
						t.Fatalf("recovered prefix %d is ahead of acknowledged %d + one in-flight op", k, acked)
					}
					if policy == "always" && k < acked {
						t.Fatalf("fsync=always lost acknowledged ops: recovered prefix %d < acknowledged %d", k, acked)
					}
					if policy == "interval" && k < acked {
						t.Logf("fsync=interval lost %d acknowledged ops (allowed, bounded by flush interval)", acked-k)
					}
				})
			}
		})
	}
}

// TestCrashMidCheckpoint kills the child immediately after the checkpoint
// image becomes durable but before the checkpoint-end record and the WAL
// truncation — the most delicate window of the checkpoint protocol.
func TestCrashMidCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process; skipped in -short")
	}
	expected, err := crashtest.ExpectedChecksums("always")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if code := runChild(t, dir, 0, "always", "APOLLO_CRASH_MIDCKPT=1"); code != 3 {
		t.Fatalf("child survived mid-checkpoint kill (exit %d)", code)
	}
	acked, err := crashtest.ReadProgress(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, rec := verifyRecovered(t, dir, "always", expected)
	if k < acked {
		t.Fatalf("mid-checkpoint crash lost acknowledged ops: prefix %d < acknowledged %d", k, acked)
	}
	if rec.CheckpointSeq == 0 {
		t.Fatal("recovery ignored the durable checkpoint image")
	}
}

// TestRecoveryRefusesMidLogCorruption flips a byte in the interior of the
// log: that is not a torn tail, and recovery must refuse with ErrCorrupt
// rather than silently replay a damaged history.
func TestRecoveryRefusesMidLogCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process; skipped in -short")
	}
	dir := t.TempDir()
	if code := runChild(t, dir, 0, "always"); code != 0 {
		t.Fatalf("baseline child crashed (exit %d)", code)
	}
	// Find the newest WAL segment and damage a frame in its interior.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments found: %v", err)
	}
	seg := segs[len(segs)-1]
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) < 200 {
		t.Fatalf("segment too small to corrupt mid-file: %d bytes", len(buf))
	}
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = apollo.OpenDir(dir, crashtest.Config("always"))
	if err == nil {
		t.Fatal("recovery accepted a corrupt log")
	}
	if !errors.Is(err, apollo.ErrCorrupt) || !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("corruption error does not locate the damage: %v", err)
	}
}
