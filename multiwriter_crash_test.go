package apollo_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"apollo"
	"apollo/internal/wal/crashtest"
)

// verifyMultiWriter recovers a multi-writer crash directory and checks the
// transactional invariants (see the multi-writer mode comment in package
// crashtest): committed transactions are atomic (3 mw rows per group, the
// ctr sum matches the group count), deliberate rollbacks never surface, and
// under fsync=always every acknowledged commit survived. Returns the number
// of committed groups.
func verifyMultiWriter(t *testing.T, dir, policy string) int {
	t.Helper()
	db, err := apollo.OpenDir(dir, crashtest.Config(policy))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db.Close()

	res, err := db.Query("SELECT sess, txid, part FROM mw")
	if err != nil {
		t.Fatalf("mw after recovery: %v", err)
	}
	type key struct{ sess, txid int64 }
	groups := map[key]map[int64]bool{}
	for _, r := range res.Rows {
		k := key{r[0].I, r[1].I}
		if groups[k] == nil {
			groups[k] = map[int64]bool{}
		}
		if groups[k][r[2].I] {
			t.Fatalf("duplicate row (%d,%d,%d)", k.sess, k.txid, r[2].I)
		}
		groups[k][r[2].I] = true
	}
	for k, parts := range groups {
		if len(parts) != 3 || !parts[0] || !parts[1] || !parts[2] {
			t.Fatalf("torn transaction: group (%d,%d) has parts %v, want {0,1,2}", k.sess, k.txid, parts)
		}
		if k.txid%5 == 4 {
			t.Fatalf("rolled-back transaction (%d,%d) resurrected", k.sess, k.txid)
		}
	}

	res, err = db.Query("SELECT id, n FROM ctr")
	if err != nil {
		t.Fatalf("ctr after recovery: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("ctr has %d rows, want 4", len(res.Rows))
	}
	var sum int64
	for _, r := range res.Rows {
		if r[1].I < 0 {
			t.Fatalf("ctr id %d went negative: %d", r[0].I, r[1].I)
		}
		sum += r[1].I
	}
	if sum != int64(len(groups)) {
		t.Fatalf("cross-table atomicity broken: ctr sum %d != %d committed groups", sum, len(groups))
	}

	acks, err := crashtest.ReadAcks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if policy == "always" {
		for _, a := range acks {
			if _, ok := groups[key{a.Sess, a.Txid}]; !ok {
				t.Fatalf("fsync=always lost acknowledged commit (%d,%d)", a.Sess, a.Txid)
			}
		}
	} else {
		lost := 0
		for _, a := range acks {
			if _, ok := groups[key{a.Sess, a.Txid}]; !ok {
				lost++
			}
		}
		if lost > 0 {
			t.Logf("fsync=%s lost %d acknowledged commits (allowed)", policy, lost)
		}
	}
	return len(groups)
}

// TestMultiWriterCrashMatrix runs N concurrent transactional sessions in a
// child process, kills it at randomized WAL byte offsets, and verifies that
// recovery keeps committed transactions atomic across both tables while
// uncommitted and rolled-back transactions vanish. Set APOLLO_CRASH_FULL=1
// for the 16-point matrix (4 by default).
func TestMultiWriterCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix spawns child processes; skipped in -short")
	}
	const sessions = 4
	env := fmt.Sprintf("APOLLO_CRASH_MULTI=%d", sessions)
	points := 4
	if os.Getenv("APOLLO_CRASH_FULL") != "" {
		points = 16
	}
	for _, policy := range []string{"always", "interval"} {
		t.Run("fsync="+policy, func(t *testing.T) {
			// Baseline crash-free run: learn the WAL extent and check that a
			// clean shutdown preserves exactly the committed transactions.
			base := t.TempDir()
			if code := runChild(t, base, 0, policy, env); code != 0 {
				t.Fatalf("baseline child crashed (exit %d)", code)
			}
			total, err := crashtest.ReadWALTotal(base)
			if err != nil {
				t.Fatal(err)
			}
			setup, err := crashtest.ReadSetupBytes(base)
			if err != nil {
				t.Fatal(err)
			}
			baseAcks, err := crashtest.ReadAcks(base)
			if err != nil {
				t.Fatal(err)
			}
			if got := verifyMultiWriter(t, base, policy); got != len(baseAcks) {
				t.Fatalf("crash-free run: %d committed groups != %d acknowledged", got, len(baseAcks))
			}

			rng := rand.New(rand.NewSource(20130623)) // deterministic matrix
			for i := 0; i < points; i++ {
				// Stay above the (deterministic) setup so both tables exist in
				// every recovered state; bias below the baseline extent so the
				// armed crash usually fires despite run-to-run WAL variance.
				span := (total - setup) * 4 / 5
				crashAt := setup + 1 + rng.Int63n(span)
				t.Run(fmt.Sprintf("crashAt=%d", crashAt), func(t *testing.T) {
					dir := t.TempDir()
					code := runChild(t, dir, crashAt, policy, env)
					if code != 3 {
						// This run wrote less WAL than the baseline and ended
						// before the crash point; still a valid clean-run check.
						t.Logf("crash point %d not reached (exit %d); verifying clean run", crashAt, code)
					}
					groups := verifyMultiWriter(t, dir, policy)
					t.Logf("recovered %d committed groups", groups)
				})
			}
		})
	}
}
