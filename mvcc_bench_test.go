package apollo_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"apollo"
)

// BenchmarkMVCCSessions measures mixed-workload throughput against the
// session count: each transaction inserts two rows and updates one
// session-private hot row, then commits under fsync=always; every fourth
// iteration the session also runs an analytic aggregate over the growing
// table (snapshot readers never block on the writers). ns/op is per
// transaction; the fsyncs/commit metric shows how much of the durability
// cost the cross-session group commit amortizes (1.0 = every commit paid its
// own fsync, lower = shared). Recorded numbers: BENCH_mvcc.json.
func BenchmarkMVCCSessions(b *testing.B) {
	for _, sessions := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			dir := b.TempDir()
			cfg := apollo.DefaultConfig()
			cfg.FsyncPolicy = "always"
			db, err := apollo.OpenDir(dir, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			db.MustExec("CREATE TABLE mixed (sess BIGINT, n BIGINT, v BIGINT)")
			db.MustExec("CREATE TABLE hot (id BIGINT, n BIGINT)")
			for s := 0; s < sessions; s++ {
				db.MustExec(fmt.Sprintf("INSERT INTO hot VALUES (%d, 0)", s))
			}

			ctx := context.Background()
			perSession := (b.N + sessions - 1) / sessions
			snap := db.MetricsSnapshot()
			fsyncs0, commits0 := snap["apollo_wal_fsyncs_total"], snap["apollo_txn_commits_total"]
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for n := 0; n < perSession; n++ {
						tx, err := db.Begin(ctx)
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := tx.Exec(fmt.Sprintf(
							"INSERT INTO mixed VALUES (%d, %d, %d), (%d, %d, %d)",
							s, n, n*3, s, n, n*7)); err != nil {
							b.Error(err)
							return
						}
						if _, err := tx.Exec(fmt.Sprintf(
							"UPDATE hot SET n = n + 1 WHERE id = %d", s)); err != nil {
							b.Error(err)
							return
						}
						if err := tx.Commit(ctx); err != nil {
							b.Error(err)
							return
						}
						if n%4 == 0 {
							if _, err := db.Query("SELECT sess, SUM(v) FROM mixed GROUP BY sess"); err != nil {
								b.Error(err)
								return
							}
						}
					}
				}(s)
			}
			wg.Wait()
			b.StopTimer()
			snap = db.MetricsSnapshot()
			commits := snap["apollo_txn_commits_total"] - commits0
			if commits > 0 {
				b.ReportMetric((snap["apollo_wal_fsyncs_total"]-fsyncs0)/commits, "fsyncs/commit")
				b.ReportMetric(commits, "commits")
			}
		})
	}
}
