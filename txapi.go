package apollo

import (
	"context"

	"apollo/internal/sql"
	"apollo/internal/table"
	"apollo/internal/txn"
)

// Transaction errors. All three are plain sentinel errors; match with
// errors.Is.
var (
	// ErrWriteConflict is returned when a statement tries to modify a row
	// another transaction wrote first (first-writer-wins snapshot isolation).
	// The losing transaction has been rolled back; retry it from Begin.
	ErrWriteConflict = table.ErrWriteConflict
	// ErrClosed is returned when a transaction or statement runs against a
	// closed database; in-flight transactions are rolled back by Close.
	ErrClosed = txn.ErrClosed
	// ErrTxnDone is returned when a Tx is used after Commit or Rollback.
	ErrTxnDone = txn.ErrTxnDone
)

// Session is a SQL statement stream with transaction state: BEGIN, COMMIT,
// and ROLLBACK statements work, and statements between them run inside the
// open transaction under snapshot isolation. Statements outside a transaction
// autocommit. A Session is not safe for concurrent use; open one per client.
type Session struct {
	s *sql.Session
}

// Session opens a new session.
func (db *DB) Session() *Session { return &Session{s: db.engine.NewSession()} }

// Exec parses and executes one statement under a background context.
func (s *Session) Exec(stmt string) (*Result, error) {
	return s.ExecContext(context.Background(), stmt)
}

// ExecContext parses and executes one statement under ctx.
func (s *Session) ExecContext(ctx context.Context, stmt string) (*Result, error) {
	r, err := s.s.ExecContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

// ExecPrepared executes a prepared statement inside the session's open
// transaction, if any.
func (s *Session) ExecPrepared(ctx context.Context, st *Stmt, args ...Value) (*Result, error) {
	r, err := s.s.ExecPrepared(ctx, st.p, args...)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

// StreamPrepared is ExecPrepared with a row sink: a prepared SELECT's rows
// stream to sink as they are produced (the returned Result has no Rows); any
// other statement executes as ExecPrepared and sink is never called.
func (s *Session) StreamPrepared(ctx context.Context, st *Stmt, sink RowSink, args ...Value) (*Result, error) {
	r, err := s.s.StreamPrepared(ctx, st.p, sink, args...)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

// RowSink receives a streamed SELECT: Schema is called once, then Row once
// per result row as it is produced. Rows alias executor storage and are only
// valid for the duration of the call; implementations must copy what they
// keep. An error from either method aborts the query and is returned from
// StreamContext.
type RowSink = sql.RowSink

// StreamContext parses and executes one statement; a SELECT's rows are
// delivered to sink as they are produced instead of materialized in the
// Result (whose Rows is then nil). Any other statement executes exactly as
// ExecContext and sink is never called. This is the serving path: results
// flow to the wire without an O(result) buffer.
func (s *Session) StreamContext(ctx context.Context, stmt string, sink RowSink) (*Result, error) {
	r, err := s.s.StreamContext(ctx, stmt, sink)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

// InTxn reports whether the session has an open transaction.
func (s *Session) InTxn() bool { return s.s.InTxn() }

// Close rolls back any open transaction.
func (s *Session) Close() { s.s.Close(context.Background()) }

// Stmt is a prepared, parameterized statement (`?` placeholders): parsed,
// bound, and — for SELECTs — compiled once, then executed many times with
// different arguments. SELECT executions re-point the compiled plan's scans
// at a fresh snapshot, so reuse never reads stale data. A Stmt serializes
// its executions internally.
type Stmt struct {
	p *sql.Prepared
}

// Prepare parses, binds, and compiles a statement with `?` placeholders.
// Binding and planning errors surface here rather than at execution.
func (db *DB) Prepare(src string) (*Stmt, error) {
	p, err := db.engine.Prepare(src)
	if err != nil {
		return nil, err
	}
	return &Stmt{p: p}, nil
}

// NumParams returns the placeholder count.
func (st *Stmt) NumParams() int { return st.p.NumParams() }

// Exec executes the statement in autocommit under a background context.
func (st *Stmt) Exec(args ...Value) (*Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// ExecContext executes the statement in autocommit with the given arguments,
// one per placeholder in statement order. Arguments coerce like literals
// (strings parse as dates against DATE columns, ints widen to float).
func (st *Stmt) ExecContext(ctx context.Context, args ...Value) (*Result, error) {
	r, err := st.p.ExecContext(ctx, args...)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

// Tx is an open transaction: statements executed through it see one snapshot
// (plus the transaction's own writes) and become visible atomically at
// Commit. Obtain one with DB.Begin. Not safe for concurrent use.
type Tx struct {
	s *sql.Session
}

// Begin starts a snapshot-isolation transaction. Writes of transactions that
// committed after Begin are invisible; writing a row such a transaction
// already wrote fails with ErrWriteConflict (first-writer-wins) and rolls
// this transaction back.
func (db *DB) Begin(ctx context.Context) (*Tx, error) {
	s := db.engine.NewSession()
	if _, err := s.ExecStmtContext(ctx, &sql.Begin{}); err != nil {
		return nil, err
	}
	return &Tx{s: s}, nil
}

// Exec executes one statement inside the transaction (background context).
func (tx *Tx) Exec(stmt string) (*Result, error) {
	return tx.ExecContext(context.Background(), stmt)
}

// ExecContext executes one statement inside the transaction. On
// ErrWriteConflict the transaction is rolled back; other statement errors
// leave it open for the caller to decide.
func (tx *Tx) ExecContext(ctx context.Context, stmt string) (*Result, error) {
	if !tx.s.InTxn() {
		return nil, tx.doneErr()
	}
	r, err := tx.s.ExecContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

// Query is Exec for SELECT statements (alias for readability).
func (tx *Tx) Query(stmt string) (*Result, error) { return tx.Exec(stmt) }

// Commit makes the transaction's writes visible atomically and, under the
// "always" fsync policy, waits until its commit record is durable — sharing
// the fsync with commits from other sessions (group commit). The wait honors
// ctx: on cancellation the commit is still applied and durable with the next
// sync; only the confirmation is abandoned.
func (tx *Tx) Commit(ctx context.Context) error {
	if !tx.s.InTxn() {
		return tx.doneErr()
	}
	_, err := tx.s.ExecStmtContext(ctx, &sql.Commit{})
	return err
}

// Rollback discards the transaction's writes. Idempotent after Commit,
// Rollback, or a conflict abort: returns ErrTxnDone (or ErrClosed) without
// side effects.
func (tx *Tx) Rollback(ctx context.Context) error {
	if !tx.s.InTxn() {
		return tx.doneErr()
	}
	_, err := tx.s.ExecStmtContext(ctx, &sql.Rollback{})
	return err
}

// doneErr distinguishes "finished normally" from "aborted by DB.Close".
func (tx *Tx) doneErr() error {
	if err := tx.s.DoneErr(); err != nil {
		return err
	}
	return ErrTxnDone
}
