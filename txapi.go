package apollo

import (
	"context"

	"apollo/internal/sql"
	"apollo/internal/table"
	"apollo/internal/txn"
)

// Transaction errors. All three are plain sentinel errors; match with
// errors.Is.
var (
	// ErrWriteConflict is returned when a statement tries to modify a row
	// another transaction wrote first (first-writer-wins snapshot isolation).
	// The losing transaction has been rolled back; retry it from Begin.
	ErrWriteConflict = table.ErrWriteConflict
	// ErrClosed is returned when a transaction or statement runs against a
	// closed database; in-flight transactions are rolled back by Close.
	ErrClosed = txn.ErrClosed
	// ErrTxnDone is returned when a Tx is used after Commit or Rollback.
	ErrTxnDone = txn.ErrTxnDone
)

// Session is a SQL statement stream with transaction state: BEGIN, COMMIT,
// and ROLLBACK statements work, and statements between them run inside the
// open transaction under snapshot isolation. Statements outside a transaction
// autocommit. A Session is not safe for concurrent use; open one per client.
type Session struct {
	s *sql.Session
}

// Session opens a new session.
func (db *DB) Session() *Session { return &Session{s: db.engine.NewSession()} }

// Exec parses and executes one statement under a background context.
func (s *Session) Exec(stmt string) (*Result, error) {
	return s.ExecContext(context.Background(), stmt)
}

// ExecContext parses and executes one statement under ctx.
func (s *Session) ExecContext(ctx context.Context, stmt string) (*Result, error) {
	r, err := s.s.ExecContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

// InTxn reports whether the session has an open transaction.
func (s *Session) InTxn() bool { return s.s.InTxn() }

// Close rolls back any open transaction.
func (s *Session) Close() { s.s.Close(context.Background()) }

// Tx is an open transaction: statements executed through it see one snapshot
// (plus the transaction's own writes) and become visible atomically at
// Commit. Obtain one with DB.Begin. Not safe for concurrent use.
type Tx struct {
	s *sql.Session
}

// Begin starts a snapshot-isolation transaction. Writes of transactions that
// committed after Begin are invisible; writing a row such a transaction
// already wrote fails with ErrWriteConflict (first-writer-wins) and rolls
// this transaction back.
func (db *DB) Begin(ctx context.Context) (*Tx, error) {
	s := db.engine.NewSession()
	if _, err := s.ExecStmtContext(ctx, &sql.Begin{}); err != nil {
		return nil, err
	}
	return &Tx{s: s}, nil
}

// Exec executes one statement inside the transaction (background context).
func (tx *Tx) Exec(stmt string) (*Result, error) {
	return tx.ExecContext(context.Background(), stmt)
}

// ExecContext executes one statement inside the transaction. On
// ErrWriteConflict the transaction is rolled back; other statement errors
// leave it open for the caller to decide.
func (tx *Tx) ExecContext(ctx context.Context, stmt string) (*Result, error) {
	if !tx.s.InTxn() {
		return nil, tx.doneErr()
	}
	r, err := tx.s.ExecContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

// Query is Exec for SELECT statements (alias for readability).
func (tx *Tx) Query(stmt string) (*Result, error) { return tx.Exec(stmt) }

// Commit makes the transaction's writes visible atomically and, under the
// "always" fsync policy, waits until its commit record is durable — sharing
// the fsync with commits from other sessions (group commit). The wait honors
// ctx: on cancellation the commit is still applied and durable with the next
// sync; only the confirmation is abandoned.
func (tx *Tx) Commit(ctx context.Context) error {
	if !tx.s.InTxn() {
		return tx.doneErr()
	}
	_, err := tx.s.ExecStmtContext(ctx, &sql.Commit{})
	return err
}

// Rollback discards the transaction's writes. Idempotent after Commit,
// Rollback, or a conflict abort: returns ErrTxnDone (or ErrClosed) without
// side effects.
func (tx *Tx) Rollback(ctx context.Context) error {
	if !tx.s.InTxn() {
		return tx.doneErr()
	}
	_, err := tx.s.ExecStmtContext(ctx, &sql.Rollback{})
	return err
}

// doneErr distinguishes "finished normally" from "aborted by DB.Close".
func (tx *Tx) doneErr() error {
	if err := tx.s.DoneErr(); err != nil {
		return err
	}
	return ErrTxnDone
}
