package apollo

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"apollo/internal/metrics"
)

// seedObsTable loads a sales table with compressed row groups, delta rows,
// and some deleted rows so observability counters exercise every scan path.
func seedObsTable(t *testing.T, db *DB) {
	t.Helper()
	db.MustExec("CREATE TABLE sales (id BIGINT NOT NULL, cust BIGINT, amount DOUBLE, region VARCHAR NOT NULL)")
	tb, err := db.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"north", "south", "east", "west"}
	rows := make([]Row, 1000)
	for i := range rows {
		amount := NewFloat(float64(i) / 10)
		if i%50 == 3 {
			amount = NewNull(Float64)
		}
		rows[i] = Row{NewInt(int64(i)), NewInt(int64(i % 20)), amount, NewString(regions[i%4])}
	}
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	// Trickle rows stay in the delta store (mover is off in openTest).
	for i := 1000; i < 1010; i++ {
		if err := tb.Insert(Row{NewInt(int64(i)), NewInt(int64(i % 20)), NewFloat(1), NewString("delta")}); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec("DELETE FROM sales WHERE id % 100 = 7")
}

// TestQueryStatsSnapshotPerQuery is the regression test for scan and operator
// counters accumulating across ExecContext calls on a reused DB: the second
// run of an identical query must report identical stats, not doubled ones.
func TestQueryStatsSnapshotPerQuery(t *testing.T) {
	db := openTest(t)
	seedObsTable(t, db)

	queries := []string{
		"SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region",
		"SELECT COUNT(*) FROM sales WHERE id BETWEEN 100 AND 250",
	}
	for _, q := range queries {
		r1 := db.MustExec(q)
		r2 := db.MustExec(q)
		if r1.Stats != r2.Stats {
			t.Errorf("%s:\nstats changed between identical runs:\nfirst:  %+v\nsecond: %+v", q, r1.Stats, r2.Stats)
		}
		if len(r1.Operators) != len(r2.Operators) {
			t.Fatalf("%s: operator count changed: %d vs %d", q, len(r1.Operators), len(r2.Operators))
		}
		for i := range r1.Operators {
			a, b := r1.Operators[i], r2.Operators[i]
			if a.Op != b.Op || a.Workers != b.Workers || a.Batches != b.Batches || a.Rows != b.Rows {
				t.Errorf("%s: operator %d changed between identical runs:\nfirst:  %+v\nsecond: %+v", q, i, a, b)
			}
		}
	}

	// The GROUP BY on a dict-encoded string column must report coded gathers
	// (the counters this regression was originally reported against).
	r := db.MustExec(queries[0])
	if r.Stats.StringColsCoded == 0 {
		t.Errorf("expected coded string gathers, stats = %+v", r.Stats)
	}
}

func TestExplainAnalyzeOutput(t *testing.T) {
	db := openTest(t)
	seedObsTable(t, db)

	res, err := db.Query("EXPLAIN ANALYZE SELECT region, SUM(amount) FROM sales WHERE id < 500 GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Message
	for _, want := range []string{
		"execution: batch mode",
		"[est=", "rows=", "batches=", "wall=",
		"groups=", "scanned=", "eliminated=", "segments=",
		"deleted=", "delta=", "out=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
	// EXPLAIN ANALYZE executed the query, so a second plain run must agree on
	// row counts with what the annotated tree reported (smoke: non-zero scan
	// output appears).
	if strings.Contains(out, "out=0]") {
		t.Errorf("scan reported zero output rows:\n%s", out)
	}
}

func TestTraceWriterEmitsOperatorEvents(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultConfig()
	cfg.RowGroupSize = 300
	cfg.BulkLoadThreshold = 50
	cfg.TupleMoverInterval = 0
	cfg.TraceWriter = &buf
	db := Open(cfg)
	defer db.Close()
	seedObsTable(t, db)

	buf.Reset() // DML above does not trace; start clean anyway
	db.MustExec("SELECT region, COUNT(*) FROM sales WHERE id < 800 GROUP BY region")

	known := map[string]bool{"open": true, "batch": true, "eos": true, "close": true, "error": true}
	counts := map[string]int{}
	var queryID uint64
	var rows int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev metrics.TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line is not valid JSON: %q: %v", line, err)
		}
		if !known[ev.Event] {
			t.Fatalf("unknown trace event %q in %q", ev.Event, line)
		}
		if ev.Op == "" {
			t.Fatalf("trace event missing op: %q", line)
		}
		if ev.TsNs < 0 {
			t.Fatalf("negative timestamp: %q", line)
		}
		if queryID == 0 {
			queryID = ev.Query
		} else if ev.Query != queryID {
			t.Fatalf("trace mixes query ids %d and %d", queryID, ev.Query)
		}
		counts[ev.Event]++
		if ev.Event == "batch" && ev.Op == "scan" {
			rows += ev.Rows
		}
	}
	if counts["open"] == 0 {
		t.Fatal("no open events traced")
	}
	if counts["open"] != counts["close"] {
		t.Errorf("unbalanced trace: %d open vs %d close events", counts["open"], counts["close"])
	}
	if counts["error"] != 0 {
		t.Errorf("unexpected error events: %v", counts)
	}
	if rows == 0 {
		t.Error("scan batch events carried no rows")
	}
}

func TestWriteMetricsIsValidPrometheusText(t *testing.T) {
	db := openTest(t)
	seedObsTable(t, db)
	db.MustExec("SELECT region, COUNT(*) FROM sales GROUP BY region")

	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	validatePrometheusText(t, text)

	for _, name := range []string{
		"apollo_storage_reads_total",
		"apollo_storage_writes_total",
		"apollo_scan_rows_output_total",
		"apollo_scan_row_groups_total",
		"apollo_plan_queries_compiled_total",
		"apollo_colstore_segments_opened_total",
		"apollo_colstore_decode_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics dump missing series %s", name)
		}
	}

	// Snapshot must agree with the engine's authoritative scan counter.
	snap := db.MetricsSnapshot()
	if snap["apollo_scan_rows_output_total"] <= 0 {
		t.Errorf("snapshot scan rows = %v, want > 0", snap["apollo_scan_rows_output_total"])
	}
}

// validatePrometheusText is a minimal Prometheus text-exposition parser: every
// sample line must be preceded by a TYPE header for its base name, histogram
// buckets must be cumulative, and _count must equal the +Inf bucket. It is a
// copy of the checker in internal/metrics so the public dump is held to the
// same format contract.
func validatePrometheusText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	type histState struct {
		lastBucket float64
		infBucket  float64
		count      float64
		hasInf     bool
	}
	hists := map[string]*histState{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series := line[:sp]
		val := parseFloatOrFail(t, line[sp+1:])
		name := series
		var le string
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			labels := series[i:]
			if j := strings.Index(labels, `le="`); j >= 0 {
				rest := labels[j+4:]
				le = rest[:strings.IndexByte(rest, '"')]
			}
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typed[b] == "histogram" {
				base = b
			}
		}
		if typed[base] == "" {
			t.Fatalf("sample %q has no preceding TYPE header", line)
		}
		if typed[base] == "histogram" {
			h := hists[base]
			if h == nil {
				h = &histState{lastBucket: -1}
				hists[base] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if val < h.lastBucket {
					t.Fatalf("histogram %s buckets not cumulative at %q", base, line)
				}
				h.lastBucket = val
				if le == "+Inf" {
					h.infBucket = val
					h.hasInf = true
					h.lastBucket = -1 // next labeled series restarts
				}
			case strings.HasSuffix(name, "_count"):
				h.count = val
			}
		}
	}
	for base, h := range hists {
		if !h.hasInf {
			t.Errorf("histogram %s has no +Inf bucket", base)
		}
		if h.count != h.infBucket {
			t.Errorf("histogram %s: _count %v != +Inf bucket %v", base, h.count, h.infBucket)
		}
	}
}

func parseFloatOrFail(t *testing.T, s string) float64 {
	t.Helper()
	switch s {
	case "+Inf":
		return 1e308
	case "-Inf":
		return -1e308
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad sample value %q: %v", s, err)
	}
	return v
}

// TestStorageFaultMetricsMatchInternalCounters drives reads under an injected
// fault load and checks the registry's deltas against the store's own
// authoritative counters — the laws hold for whatever random fault sequence
// the injector produced.
func TestStorageFaultMetricsMatchInternalCounters(t *testing.T) {
	db := openTest(t)
	seedObsTable(t, db)

	before := db.MetricsSnapshot()
	ioBefore := db.IOStats()

	db.InjectStorageFaults(FaultConfig{ReadErrorRate: 0.3, Seed: 42})
	for i := 0; i < 10; i++ {
		db.EvictCaches()
		// Queries may exhaust retries and fail; both outcomes feed counters.
		_, _ = db.Query("SELECT COUNT(*), SUM(amount) FROM sales WHERE cust < 15")
	}
	// Capture before clearing: the store reports FaultsInjected from the
	// currently attached injector.
	after := db.MetricsSnapshot()
	ioAfter := db.IOStats()
	db.ClearStorageFaults()

	delta := func(name string) int64 { return int64(after[name] - before[name]) }
	if got, want := delta("apollo_storage_retries_total"), ioAfter.Retries-ioBefore.Retries; got != want {
		t.Errorf("retry metric delta = %d, store counted %d", got, want)
	}
	if got, want := delta("apollo_storage_faults_injected_total"), ioAfter.FaultsInjected-ioBefore.FaultsInjected; got != want {
		t.Errorf("faults-injected metric delta = %d, store counted %d", got, want)
	}
	if delta("apollo_storage_faults_injected_total") == 0 {
		t.Error("fault injection produced no faults; test exercised nothing")
	}
	if got, want := delta("apollo_storage_reads_total"), ioAfter.Reads-ioBefore.Reads; got != want {
		t.Errorf("reads metric delta = %d, store counted %d", got, want)
	}
}

func TestCorruptionMetricCountsChecksumFailures(t *testing.T) {
	db := openTest(t)
	seedObsTable(t, db)

	before := db.MetricsSnapshot()
	db.EvictCaches()
	db.InjectStorageFaults(FaultConfig{CorruptionRate: 1, Seed: 7})
	_, err := db.Query("SELECT SUM(amount) FROM sales")
	db.ClearStorageFaults()
	if err == nil || !IsCorruptionError(err) {
		t.Fatalf("expected corruption error, got %v", err)
	}
	after := db.MetricsSnapshot()
	corr := after["apollo_storage_corruption_total"] - before["apollo_storage_corruption_total"]
	injected := after["apollo_storage_faults_injected_total"] - before["apollo_storage_faults_injected_total"]
	if corr < 1 {
		t.Errorf("corruption metric delta = %v, want >= 1", corr)
	}
	if corr != injected {
		t.Errorf("corruption delta %v != injected delta %v (only corruption faults were configured)", corr, injected)
	}
}

// TestMoverHealthMetricsTrackDegradeAndRecover drives the tuple mover through
// failure (injected write faults) and recovery, checking the mover gauges
// move with Health().
func TestMoverHealthMetricsTrackDegradeAndRecover(t *testing.T) {
	db := openTest(t)
	db.MustExec("CREATE TABLE ev (id BIGINT NOT NULL, v VARCHAR NOT NULL)")
	tb, err := db.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := tb.Insert(Row{NewInt(int64(i)), NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}

	before := db.MetricsSnapshot()
	db.InjectStorageFaults(FaultConfig{WriteErrorRate: 1, Seed: 99})
	if err := tb.Reorganize(); err == nil {
		t.Fatal("Reorganize should fail while every write faults")
	}
	mid := db.MetricsSnapshot()
	h := tb.Health()
	if got := mid["apollo_mover_failures_total"] - before["apollo_mover_failures_total"]; got < 1 {
		t.Errorf("mover failure metric delta = %v, want >= 1", got)
	}
	if mid["apollo_mover_aborts_total"]-before["apollo_mover_aborts_total"] < 1 {
		t.Error("mover abort metric did not move on failed BuildRowGroup")
	}
	if mid["apollo_mover_backoff_seconds"] <= 0 {
		t.Errorf("backoff gauge = %v, want > 0 after failure", mid["apollo_mover_backoff_seconds"])
	}
	if got, want := mid["apollo_mover_consecutive_failures"], float64(h.ConsecutiveFailures); got != want {
		t.Errorf("consecutive-failures gauge = %v, Health reports %v", got, want)
	}

	db.ClearStorageFaults()
	if err := tb.Reorganize(); err != nil {
		t.Fatalf("Reorganize after clearing faults: %v", err)
	}
	after := db.MetricsSnapshot()
	if after["apollo_mover_moves_total"]-before["apollo_mover_moves_total"] < 1 {
		t.Error("mover moves metric did not increase on recovery")
	}
	if after["apollo_mover_backoff_seconds"] != 0 {
		t.Errorf("backoff gauge = %v after recovery, want 0", after["apollo_mover_backoff_seconds"])
	}
	if after["apollo_mover_consecutive_failures"] != 0 {
		t.Errorf("consecutive-failures gauge = %v after recovery, want 0", after["apollo_mover_consecutive_failures"])
	}
}
