package apollo

import (
	"context"
	"errors"
	"io"
	"os"

	"apollo/internal/load"
	"apollo/internal/sql"
)

// errLoadNoInput rejects a LoadOptions with neither Reader nor Path.
var errLoadNoInput = errors.New("apollo: Load needs a Reader or a Path")

// LoadOptions configures DB.Load, the embedded bulk-ingest API (the same
// pipeline behind SQL COPY and apollod's /v1/load). Exactly one of Reader
// and Path must be set.
type LoadOptions struct {
	// Table is the target table (required).
	Table string
	// Format is "csv" (default) or "binary" (length-prefixed row frames).
	Format string
	// Reader streams the input; Path opens a file instead.
	Reader io.Reader
	Path   string
	// Header skips the first CSV record.
	Header bool
	// Delimiter is the CSV field separator (0 = ',').
	Delimiter rune
	// BatchRows pins the batch size, disabling the adaptive controller
	// (0 = adaptive). Batches at or above the table's bulk threshold
	// compress directly into row groups; smaller ones fall back to batched
	// delta inserts.
	BatchRows int
	// MaxDeadLetters caps tolerated malformed rows (0 = default 1000,
	// negative = first bad row aborts). Rejected rows come back in
	// LoadResult.DeadLetters.
	MaxDeadLetters int
	// MaxRetries bounds per-batch retries on transient storage faults.
	MaxRetries int
	// QueueDepth > 0 pipelines decoding from compression through a bounded
	// channel of that many rows (streaming-ingest backpressure; the producer
	// blocks when the loader falls behind).
	QueueDepth int
	// GrantBytes caps the loader's buffered batch memory (0 inherits the
	// DB's MemoryBudget); a full grant flushes the batch early.
	GrantBytes int64
}

// LoadResult reports one bulk load: row counts per path (direct vs delta
// fallback), published groups, retries, per-batch stats from the adaptive
// controller, and the dead-lettered input rows.
type LoadResult = load.Result

// LoadDeadLetter is one rejected input row.
type LoadDeadLetter = load.DeadLetter

// LoadBatchStat is one flushed batch in the adaptive sweep.
type LoadBatchStat = load.BatchStat

// Load bulk-loads rows into a table (paper §4.2): batches at or above the
// table's bulk threshold bypass the delta store and compress directly into
// row groups, each published as one atomic WAL record so recovery replays
// whole groups or none. The result is non-nil even on error, carrying
// partial progress and dead letters.
func (db *DB) Load(ctx context.Context, opts LoadOptions) (*LoadResult, error) {
	if db.closed.Load() {
		return &LoadResult{}, ErrClosed
	}
	r := opts.Reader
	if r == nil && opts.Path != "" {
		f, err := os.Open(opts.Path)
		if err != nil {
			return &LoadResult{}, err
		}
		defer f.Close()
		r = f
	}
	if r == nil {
		return &LoadResult{}, errLoadNoInput
	}
	return db.engine.Load(ctx, opts.Table, r, sql.LoadSpec{
		Format:         opts.Format,
		Header:         opts.Header,
		Delim:          opts.Delimiter,
		BatchRows:      opts.BatchRows,
		MaxDeadLetters: opts.MaxDeadLetters,
		MaxRetries:     opts.MaxRetries,
		QueueDepth:     opts.QueueDepth,
		GrantBytes:     opts.GrantBytes,
	})
}
