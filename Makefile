GO ?= go

.PHONY: all build test vet lint race fuzz-smoke serve-smoke scrub-smoke cover check crash crash-full bench bench-smoke bench-parallel bench-wal bench-mvcc bench-load bench-load-smoke bench-optimizer bench-scrub clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Durability-layer errcheck: unchecked Sync()/Close() results in the WAL,
# storage, persist, and scrub packages are build failures — a silently
# ignored fsync error is exactly how acknowledged data gets lost. Deliberate
# discards carry a //nolint:synccheck annotation at the call site.
lint:
	$(GO) run ./internal/tools/synccheck -root .

# Race-detector run over the packages with concurrency-sensitive code
# (parallel scan, exchange operators, tuple mover, storage fault injection,
# chaos tests, the transaction manager and its multi-session tests in the
# root package) plus the planner/expression/colstore packages the exchange
# layer leans on, and the serving layer (wire handlers, session reaper,
# admission broker, tenant handle cache).
race:
	$(GO) test -race . ./internal/exec/batchexec ./internal/table ./internal/storage ./internal/delta ./internal/sql ./internal/plan ./internal/expr ./internal/colstore ./internal/txn ./internal/wal ./internal/server ./internal/server/broker ./internal/server/tenant ./internal/load ./internal/degrade ./internal/scrub

# Short seeded-corpus fuzz run over the encoding round-trip/robustness targets
# (bitpack, RLE, dictionary), the WAL record codec, and the bulk-load input
# decoders (CSV, length-prefixed binary). Seconds per target: enough to catch
# regressions in the untrusted-input bounds checks without stalling CI.
fuzz-smoke:
	$(GO) test ./internal/encoding -run='^$$' -fuzz=FuzzBitpackRoundtrip -fuzztime=5s
	$(GO) test ./internal/encoding -run='^$$' -fuzz=FuzzRLERoundtrip -fuzztime=5s
	$(GO) test ./internal/encoding -run='^$$' -fuzz=FuzzDictRoundtrip -fuzztime=5s
	$(GO) test ./internal/wal -run='^$$' -fuzz=FuzzWALRecord -fuzztime=5s
	$(GO) test ./internal/load -run='^$$' -fuzz=FuzzCSVLoad -fuzztime=5s
	$(GO) test ./internal/load -run='^$$' -fuzz=FuzzBinaryLoad -fuzztime=5s
	$(GO) test ./internal/sql -run='^$$' -fuzz=FuzzOptimizerParity -fuzztime=5s

# Serving acceptance: build the real apollod binary, start it with two
# tenants sharing one process and one memory budget, and drive the HTTP API
# end to end (streaming, cross-request transactions, admission shedding with
# typed 429s, per-tenant /metrics counters).
serve-smoke:
	$(GO) test -run='^TestServeSmoke$$' -count=1 -v ./internal/server

# Integrity acceptance: rot every at-rest blob copy, run a scrub pass under
# concurrent queries (100% detection, zero failed reads), then prove the
# unrecoverable case quarantines with per-table health attribution; plus the
# paced-sweep gates (pacing holds, clean data reports clean).
scrub-smoke:
	$(GO) test -run='^(TestScrubSmoke|TestScrubSweep)$$' -count=1 -v .

# Crash-injection matrix: kill a scripted workload at randomized WAL byte
# offsets and verify recovery lands on an exact committed prefix (zero
# acknowledged loss under fsync=always), plus the multi-writer matrix where
# concurrent transactional sessions must recover atomically (no torn
# transactions, rollbacks never resurface), plus the bulk-load matrix where
# kills land inside atomic row-group publishes (whole group or none, never
# torn; acknowledged loads survive at fsync=always). `make crash-full` runs
# the 64-point single-writer, 16-point multi-writer, and 24-point bulk-load
# matrices. The degrade matrix kills the ENOSPC degrade→recover cycle at
# randomized offsets (zero acked loss, no false acks across the round trip)
# and proves fsync-failure fail-stop stays stopped until restart.
crash:
	$(GO) test -run='TestCrashRecoveryMatrix|TestCrashMidCheckpoint|TestRecoveryRefusesMidLogCorruption|TestMultiWriterCrashMatrix|TestBulkLoadCrashMatrix|TestENOSPCRecoveryMatrix|TestFsyncPoisonFailStop' -count=1 .

crash-full:
	APOLLO_CRASH_FULL=1 $(GO) test -run='TestCrashRecoveryMatrix|TestCrashMidCheckpoint|TestRecoveryRefusesMidLogCorruption|TestMultiWriterCrashMatrix|TestBulkLoadCrashMatrix|TestENOSPCRecoveryMatrix|TestFsyncPoisonFailStop' -count=1 -v .

# Per-package statement coverage. internal/metrics (the observability core)
# and internal/stats (the estimators feeding cost-based plan choices) have a
# hard 70% floor; every other package is report-only for now.
cover:
	@out=$$($(GO) test -cover ./...) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | awk 'BEGIN { floors["apollo/internal/metrics"] = 70; floors["apollo/internal/stats"] = 70 } \
		$$1 == "ok" && ($$2 in floors) { \
			for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) pct[$$2] = substr($$i, 1, length($$i)-1) + 0; \
			seen[$$2] = 1 \
		} \
		END { \
			bad = 0; \
			for (p in floors) { \
				if (!seen[p]) { printf "cover: no coverage reported for %s\n", p; bad = 1; continue } \
				printf "coverage gate: %s %.1f%% (floor %d%%)\n", p, pct[p], floors[p]; \
				if (pct[p] < floors[p]) bad = 1 \
			} \
			exit bad \
		}'

# Full CI gate: build, vet, durability lint, tests (incl. golden plans +
# metrics invariants), race detector, fuzz smoke, serving smoke, integrity
# scrub smoke, crash matrix (incl. degrade/poison), bulk-load parity sweep,
# coverage floor.
check: build vet lint test race fuzz-smoke serve-smoke scrub-smoke crash bench-load-smoke cover

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Quick late-materialization check: dict-coded vs eagerly decoded string
# execution (see BENCH_dictexec.json for recorded numbers).
bench-smoke:
	$(GO) test -bench='BenchmarkGroupByString|BenchmarkJoinOnString' -benchtime=1x -run=^$$ ./internal/exec/batchexec

# Exchange-layer DOP sweep: serial vs parallel aggregation and join (see
# BENCH_parallel.json for recorded numbers and host caveats).
bench-parallel:
	$(GO) test -bench='BenchmarkParallelAgg|BenchmarkParallelJoin' -benchtime=1x -run=^$$ ./internal/exec/batchexec

# WAL append throughput across fsync policies (see BENCH_wal.json for
# recorded numbers).
bench-wal:
	$(GO) test -bench='BenchmarkAppend' -run=^$$ ./internal/wal

# Mixed transactional workload vs session count, with fsyncs-per-commit from
# the group-commit path (see BENCH_mvcc.json for recorded numbers).
bench-mvcc:
	$(GO) test -bench='BenchmarkMVCCSessions' -benchtime=1x -run=^$$ .

# Bulk-load ingest sweep: COPY a 120k-row CSV straight into compressed row
# groups, then the same pipeline at fixed batch sizes plus one adaptive run,
# recorded to BENCH_bulkload.json. Every leg is parity-gated.
bench-load:
	APOLLO_BENCH_BULKLOAD=BENCH_bulkload.json $(GO) test -run='^TestBulkLoadSweep$$' -count=1 -v .

# CI smoke: the same sweep and parity gates without recording.
bench-load-smoke:
	$(GO) test -run='^TestBulkLoadSweep$$' -count=1 .

# Scrub throughput: unpaced CRC-verify rate over ~200k rows of at-rest blobs
# vs two paced budgets, with concurrent-query latency per leg (see
# BENCH_scrub.json for recorded numbers).
bench-scrub:
	APOLLO_BENCH_SCRUB=$(CURDIR)/BENCH_scrub.json $(GO) test -run='^TestScrubSweep$$' -count=1 -v .

# Optimizer quality: the 5-table star-join benchmark (cost-based vs
# heuristic plan, parity-checked, wall-time gated at +20%) and the
# cardinality q-error table, recorded to BENCH_optimizer.json.
bench-optimizer:
	APOLLO_BENCH_OPTIMIZER=$(CURDIR)/BENCH_optimizer.json APOLLO_BENCH_OPTIMIZER_GATE=1 \
		$(GO) test -run='^(TestOptimizerStarBench|TestCardinalityQError)$$' -count=1 -v ./internal/sql

clean:
	$(GO) clean -testcache
