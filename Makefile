GO ?= go

.PHONY: all build test vet race check bench bench-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the packages with concurrency-sensitive code
# (parallel scan, tuple mover, storage fault injection, chaos tests).
race:
	$(GO) test -race . ./internal/exec/batchexec ./internal/table ./internal/storage ./internal/delta ./internal/sql

# Full CI gate: build, vet, tests, race detector.
check: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Quick late-materialization check: dict-coded vs eagerly decoded string
# execution (see BENCH_dictexec.json for recorded numbers).
bench-smoke:
	$(GO) test -bench='BenchmarkGroupByString|BenchmarkJoinOnString' -benchtime=1x -run=^$$ ./internal/exec/batchexec

clean:
	$(GO) clean -testcache
