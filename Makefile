GO ?= go

.PHONY: all build test vet race fuzz-smoke check bench bench-smoke bench-parallel clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the packages with concurrency-sensitive code
# (parallel scan, exchange operators, tuple mover, storage fault injection,
# chaos tests) plus the planner/expression/colstore packages the exchange
# layer leans on.
race:
	$(GO) test -race . ./internal/exec/batchexec ./internal/table ./internal/storage ./internal/delta ./internal/sql ./internal/plan ./internal/expr ./internal/colstore

# Short seeded-corpus fuzz run over the encoding round-trip/robustness targets
# (bitpack, RLE, dictionary). Seconds per target: enough to catch regressions
# in the untrusted-input bounds checks without stalling CI.
fuzz-smoke:
	$(GO) test ./internal/encoding -run='^$$' -fuzz=FuzzBitpackRoundtrip -fuzztime=5s
	$(GO) test ./internal/encoding -run='^$$' -fuzz=FuzzRLERoundtrip -fuzztime=5s
	$(GO) test ./internal/encoding -run='^$$' -fuzz=FuzzDictRoundtrip -fuzztime=5s

# Full CI gate: build, vet, tests, race detector, fuzz smoke.
check: build vet test race fuzz-smoke

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Quick late-materialization check: dict-coded vs eagerly decoded string
# execution (see BENCH_dictexec.json for recorded numbers).
bench-smoke:
	$(GO) test -bench='BenchmarkGroupByString|BenchmarkJoinOnString' -benchtime=1x -run=^$$ ./internal/exec/batchexec

# Exchange-layer DOP sweep: serial vs parallel aggregation and join (see
# BENCH_parallel.json for recorded numbers and host caveats).
bench-parallel:
	$(GO) test -bench='BenchmarkParallelAgg|BenchmarkParallelJoin' -benchtime=1x -run=^$$ ./internal/exec/batchexec

clean:
	$(GO) clean -testcache
