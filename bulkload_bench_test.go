package apollo_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"apollo"
)

// The bulk-load sweep: COPY a ≥100k-row CSV file straight into compressed
// row groups, then drive the same pipeline at fixed batch sizes and once
// with the adaptive controller. Every leg is parity-gated (exact COUNT and
// SUM against closed-form values), so `make bench-load-smoke` fails CI if
// the fast path drops, duplicates, or mangles rows. With
// APOLLO_BENCH_BULKLOAD=<path> the sweep is recorded as JSON
// (`make bench-load` writes BENCH_bulkload.json).

const (
	benchLoadRows      = 120_000
	benchRowGroupSize  = 16384
	benchBulkThreshold = 4096
)

// benchLoadCSV renders rows [0, n): id, id%97, and a 50-value string column
// so dictionary encoding has something to chew on.
func benchLoadCSV(n int) string {
	var sb strings.Builder
	sb.Grow(n * 16)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d,%d,v-%d\n", i, i%97, i%50)
	}
	return sb.String()
}

// benchParityGate checks the loaded table against closed-form aggregates.
func benchParityGate(t *testing.T, db *apollo.DB, table string, n int) {
	t.Helper()
	res, err := db.Query(fmt.Sprintf("SELECT COUNT(*), SUM(id), SUM(grp) FROM %s", table))
	if err != nil {
		t.Fatalf("parity query on %s: %v", table, err)
	}
	wantSum := int64(n) * int64(n-1) / 2
	var wantGrp int64
	for i := 0; i < n; i++ {
		wantGrp += int64(i % 97)
	}
	got := res.Rows[0]
	if got[0].I != int64(n) || got[1].I != wantSum || got[2].I != wantGrp {
		t.Fatalf("parity gate failed on %s: COUNT=%d SUM(id)=%d SUM(grp)=%d, want %d/%d/%d",
			table, got[0].I, got[1].I, got[2].I, n, wantSum, wantGrp)
	}
}

type benchSweepEntry struct {
	BatchRows  int     `json:"batch_rows"` // 0 = adaptive
	Rows       int     `json:"rows"`
	Direct     int     `json:"direct"`
	Delta      int     `json:"delta"`
	Groups     int     `json:"groups"`
	Seconds    float64 `json:"seconds"`
	RowsPerSec float64 `json:"rows_per_sec"`
	FinalTgt   int     `json:"final_target,omitempty"` // adaptive leg only
	Batches    int     `json:"batches"`
}

func TestBulkLoadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk-load sweep moves ~600k rows; skipped in -short")
	}
	cfg := apollo.DefaultConfig()
	cfg.TupleMoverInterval = 0
	cfg.FsyncPolicy = "off" // measure the pipeline, not the disk
	db, err := apollo.OpenDir(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	withOpts := fmt.Sprintf("WITH (rowgroup_size=%d, bulk_threshold=%d)", benchRowGroupSize, benchBulkThreshold)
	csv := benchLoadCSV(benchLoadRows)

	// Leg 1 — SQL COPY from a file: the acceptance path. ≥100k rows must
	// land as compressed row groups directly, with the delta store only
	// catching a sub-threshold tail.
	path := filepath.Join(t.TempDir(), "bench.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE cp (id BIGINT, grp BIGINT, v VARCHAR) " + withOpts); err != nil {
		t.Fatal(err)
	}
	copyStart := time.Now()
	res, err := db.Exec(fmt.Sprintf("COPY cp FROM '%s' WITH (format='csv')", path))
	if err != nil {
		t.Fatalf("COPY: %v", err)
	}
	copySecs := time.Since(copyStart).Seconds()
	if res.Affected != benchLoadRows {
		t.Fatalf("COPY affected %d rows, want %d", res.Affected, benchLoadRows)
	}
	tb, err := db.Table("cp")
	if err != nil {
		t.Fatal(err)
	}
	st := tb.Stats()
	if st.DeltaRows >= benchBulkThreshold {
		t.Fatalf("COPY left %d rows in the delta store (want < %d: direct path only, sub-threshold tail at most)",
			st.DeltaRows, benchBulkThreshold)
	}
	if st.CompressedRows != benchLoadRows-st.DeltaRows || st.CompressedGroups == 0 {
		t.Fatalf("COPY compressed %d rows in %d groups, want %d", st.CompressedRows, st.CompressedGroups, benchLoadRows-st.DeltaRows)
	}
	benchParityGate(t, db, "cp", benchLoadRows)
	copyEntry := benchSweepEntry{
		BatchRows: benchRowGroupSize, Rows: benchLoadRows,
		Direct: st.CompressedRows, Delta: st.DeltaRows, Groups: st.CompressedGroups,
		Seconds: copySecs, RowsPerSec: float64(benchLoadRows) / copySecs,
	}

	// Legs 2..n — fixed batch sizes through the embedded API, then one
	// adaptive run. The sweep needs rows/sec at ≥2 batch sizes on record.
	ctx := context.Background()
	sweep := []benchSweepEntry{}
	for _, batch := range []int{benchBulkThreshold, benchBulkThreshold * 2, benchRowGroupSize, 0} {
		table := fmt.Sprintf("ld_%d", batch)
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (id BIGINT, grp BIGINT, v VARCHAR) %s", table, withOpts)); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		lres, err := db.Load(ctx, apollo.LoadOptions{
			Table:     table,
			Reader:    strings.NewReader(csv),
			BatchRows: batch,
		})
		if err != nil {
			t.Fatalf("load batch=%d: %v", batch, err)
		}
		secs := time.Since(start).Seconds()
		if lres.RowsLoaded != benchLoadRows || len(lres.DeadLetters) != 0 {
			t.Fatalf("load batch=%d: %d rows, %d dead letters", batch, lres.RowsLoaded, len(lres.DeadLetters))
		}
		if lres.RowsDelta >= benchBulkThreshold {
			t.Fatalf("load batch=%d left %d delta rows, want < %d", batch, lres.RowsDelta, benchBulkThreshold)
		}
		benchParityGate(t, db, table, benchLoadRows)
		e := benchSweepEntry{
			BatchRows: batch, Rows: lres.RowsLoaded,
			Direct: lres.RowsDirect, Delta: lres.RowsDelta, Groups: lres.Groups,
			Seconds: secs, RowsPerSec: float64(lres.RowsLoaded) / secs,
			Batches: len(lres.Batches),
		}
		if batch == 0 {
			e.FinalTgt = lres.FinalTarget
		}
		sweep = append(sweep, e)
	}

	out := os.Getenv("APOLLO_BENCH_BULKLOAD")
	if out == "" {
		return // smoke mode: parity gates passed, nothing to record
	}
	doc := map[string]any{
		"bench":       "bulkload",
		"date":        time.Now().UTC().Format("2006-01-02"),
		"rows":        benchLoadRows,
		"schema":      "id BIGINT, grp BIGINT, v VARCHAR",
		"table_opts":  map[string]int{"rowgroup_size": benchRowGroupSize, "bulk_threshold": benchBulkThreshold},
		"fsync":       "off",
		"copy":        copyEntry,
		"sweep":       sweep,
		"note":        "single-process sweep on the CI host; relative shape matters, absolute rows/sec does not",
		"adaptive_at": sweep[len(sweep)-1].FinalTgt,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded sweep to %s", out)
}
