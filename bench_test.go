package apollo

// Benchmarks regenerating the paper's tables and figures (one per experiment
// in DESIGN.md's index), plus micro-benchmarks of the engine's hot paths.
// The experiment benches wrap the same harness cmd/csbench uses, writing
// their tables to io.Discard; run `go run ./cmd/csbench all` for the
// human-readable output, and `go test -bench=.` for timings.

import (
	"fmt"
	"io"
	"testing"

	"apollo/internal/experiments"
	"apollo/internal/workload"
)

// --- Experiment benches (E1–E12) ---

func BenchmarkTable1Compression(b *testing.B) { // E1
	for i := 0; i < b.N; i++ {
		if err := experiments.E1Table1Compression(io.Discard, 50000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeedupSSB(b *testing.B) { // E2
	for i := 0; i < b.N; i++ {
		if err := experiments.E2SpeedupSSB(io.Discard, 0.2, 4, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOperatorRepertoire(b *testing.B) { // E3
	for i := 0; i < b.N; i++ {
		if err := experiments.E3Repertoire(io.Discard, 0.2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentElimination(b *testing.B) { // E4
	for i := 0; i < b.N; i++ {
		if err := experiments.E4SegmentElimination(io.Discard, 60000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitmapPushdown(b *testing.B) { // E5
	for i := 0; i < b.N; i++ {
		if err := experiments.E5BitmapPushdown(io.Discard, 0.2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrickleInsert(b *testing.B) { // E6
	for i := 0; i < b.N; i++ {
		if err := experiments.E6TrickleInsert(io.Discard, 20000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) { // E7
	for i := 0; i < b.N; i++ {
		if err := experiments.E7BulkLoadThreshold(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArchivalAccess(b *testing.B) { // E8
	for i := 0; i < b.N; i++ {
		if err := experiments.E8ArchivalAccess(io.Discard, 60000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeleteBitmap(b *testing.B) { // E9
	for i := 0; i < b.N; i++ {
		if err := experiments.E9DeleteOverhead(io.Discard, 60000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpill(b *testing.B) { // E10
	for i := 0; i < b.N; i++ {
		if err := experiments.E10Spill(io.Discard, 0.2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodingAblation(b *testing.B) { // E11
	for i := 0; i < b.N; i++ {
		if err := experiments.E11EncodingAblation(io.Discard, 50000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampling(b *testing.B) { // E12
	for i := 0; i < b.N; i++ {
		if err := experiments.E12Sampling(io.Discard, 60000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro benchmarks: the engine's hot paths ---

// ssbDB loads an SSB warehouse once per benchmark.
func ssbDB(b *testing.B, mode ExecutionMode, parallel int) *DB {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.Parallel = parallel
	cfg.TupleMoverInterval = 0
	// Scale storage thresholds down with the dataset so bulk loads compress
	// directly (the defaults are the paper's production values).
	cfg.RowGroupSize = 1 << 16
	cfg.BulkLoadThreshold = 4096
	db := Open(cfg)
	b.Cleanup(db.Close)
	data := workload.GenSSB(0.5, 42)
	for _, l := range []struct {
		name   string
		schema *Schema
		rows   []Row
	}{
		{"lineorder", workload.LineorderSchema, data.Lineorder},
		{"dwdate", workload.DateSchema, data.Date},
		{"customer", workload.CustomerSchema, data.Customer},
		{"supplier", workload.SupplierSchema, data.Supplier},
		{"part", workload.PartSchema, data.Part},
	} {
		t, err := db.CreateTable(l.name, l.schema)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.BulkLoad(l.rows); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func benchQuery(b *testing.B, db *DB, q string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanRowMode(b *testing.B) {
	db := ssbDB(b, ModeRow, 0)
	benchQuery(b, db, "SELECT SUM(lo_revenue) FROM lineorder")
}

func BenchmarkScanBatchMode(b *testing.B) {
	db := ssbDB(b, Mode2014, 0)
	benchQuery(b, db, "SELECT SUM(lo_revenue) FROM lineorder")
}

func BenchmarkScanBatchParallel(b *testing.B) {
	db := ssbDB(b, Mode2014, 4)
	benchQuery(b, db, "SELECT SUM(lo_revenue) FROM lineorder")
}

func BenchmarkFilterPushdown(b *testing.B) {
	db := ssbDB(b, Mode2014, 0)
	benchQuery(b, db, "SELECT COUNT(*) FROM lineorder WHERE lo_quantity < 5 AND lo_discount = 3")
}

func BenchmarkStarJoinBatch(b *testing.B) {
	db := ssbDB(b, Mode2014, 0)
	benchQuery(b, db, `SELECT SUM(lo_revenue) FROM lineorder, supplier
		WHERE lo_suppkey = s_suppkey AND s_region = 'ASIA'`)
}

func BenchmarkStarJoinRow(b *testing.B) {
	db := ssbDB(b, ModeRow, 0)
	benchQuery(b, db, `SELECT SUM(lo_revenue) FROM lineorder, supplier
		WHERE lo_suppkey = s_suppkey AND s_region = 'ASIA'`)
}

func BenchmarkGroupByBatch(b *testing.B) {
	db := ssbDB(b, Mode2014, 0)
	benchQuery(b, db, "SELECT lo_custkey, SUM(lo_revenue) FROM lineorder GROUP BY lo_custkey")
}

func BenchmarkTopN(b *testing.B) {
	db := ssbDB(b, Mode2014, 0)
	benchQuery(b, db, "SELECT lo_orderkey, lo_revenue FROM lineorder ORDER BY lo_revenue DESC LIMIT 10")
}

func BenchmarkTrickleInsertPath(b *testing.B) {
	cfg := DefaultConfig()
	cfg.TupleMoverInterval = 0
	db := Open(cfg)
	defer db.Close()
	db.MustExec("CREATE TABLE t (a BIGINT NOT NULL, s VARCHAR NOT NULL)")
	tbl, _ := db.Table("t")
	row := Row{NewInt(1), NewString("x")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoadPath(b *testing.B) {
	data := workload.GenSSB(0.2, 7).Lineorder
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultConfig()
		cfg.TupleMoverInterval = 0
		db := Open(cfg)
		tbl, err := db.CreateTable(fmt.Sprintf("t%d", i), workload.LineorderSchema)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := tbl.BulkLoad(data); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
}
