package apollo

import (
	"context"
	"testing"
)

func preparedDB(t *testing.T) *DB {
	t.Helper()
	db := Open(DefaultConfig())
	t.Cleanup(db.Close)
	db.MustExec(`CREATE TABLE events (id BIGINT, kind VARCHAR, amount DOUBLE, sold DATE)`)
	db.MustExec(`INSERT INTO events VALUES
		(1, 'click', 1.5, DATE '2013-06-01'),
		(2, 'view',  2.5, DATE '2013-06-02'),
		(3, 'click', 3.5, DATE '2013-06-03'),
		(4, 'buy',  10.0, DATE '2013-06-04')`)
	return db
}

func TestPreparedSelectReuse(t *testing.T) {
	db := preparedDB(t)
	st, err := db.Prepare(`SELECT id, amount FROM events WHERE kind = ? AND amount > ? ORDER BY id`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if got := st.NumParams(); got != 2 {
		t.Fatalf("NumParams = %d, want 2", got)
	}
	res, err := st.Exec(NewString("click"), NewFloat(1.0))
	if err != nil {
		t.Fatalf("Exec 1: %v", err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 3 {
		t.Fatalf("Exec 1 rows = %v", res.Rows)
	}
	// Different arguments on the same plan.
	res, err = st.Exec(NewString("buy"), NewFloat(5.0))
	if err != nil {
		t.Fatalf("Exec 2: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 4 {
		t.Fatalf("Exec 2 rows = %v", res.Rows)
	}
	// Reuse must see rows inserted after Prepare (snapshot rebind).
	db.MustExec(`INSERT INTO events VALUES (5, 'click', 9.0, DATE '2013-06-05')`)
	res, err = st.Exec(NewString("click"), NewFloat(1.0))
	if err != nil {
		t.Fatalf("Exec 3: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("Exec 3 rows = %v, want 3 rows including the new insert", res.Rows)
	}
}

func TestPreparedDateParam(t *testing.T) {
	db := preparedDB(t)
	st, err := db.Prepare(`SELECT COUNT(*) FROM events WHERE sold >= ?`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	// A string argument against a DATE column must parse as a date.
	res, err := st.Exec(NewString("2013-06-03"))
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v, want 2", res.Rows[0][0])
	}
	// Prepared aggregation must not serve a compile-time metadata answer.
	db.MustExec(`INSERT INTO events VALUES (6, 'view', 1.0, DATE '2013-06-09')`)
	res, err = st.Exec(NewString("2013-06-03"))
	if err != nil {
		t.Fatalf("Exec 2: %v", err)
	}
	if res.Rows[0][0].I != 3 {
		t.Fatalf("count after insert = %v, want 3", res.Rows[0][0])
	}
}

func TestPreparedDML(t *testing.T) {
	db := preparedDB(t)
	ins, err := db.Prepare(`INSERT INTO events VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatalf("Prepare INSERT: %v", err)
	}
	for i := int64(10); i < 13; i++ {
		res, err := ins.Exec(NewInt(i), NewString("bulk"), NewFloat(float64(i)), NewString("2013-07-01"))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if res.Affected != 1 {
			t.Fatalf("insert %d affected = %d", i, res.Affected)
		}
	}
	upd, err := db.Prepare(`UPDATE events SET amount = ? WHERE kind = ?`)
	if err != nil {
		t.Fatalf("Prepare UPDATE: %v", err)
	}
	res, err := upd.Exec(NewFloat(0.5), NewString("bulk"))
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if res.Affected != 3 {
		t.Fatalf("update affected = %d, want 3", res.Affected)
	}
	del, err := db.Prepare(`DELETE FROM events WHERE id = ?`)
	if err != nil {
		t.Fatalf("Prepare DELETE: %v", err)
	}
	if res, err = del.Exec(NewInt(11)); err != nil || res.Affected != 1 {
		t.Fatalf("delete: affected=%d err=%v", res.Affected, err)
	}
	q := db.MustExec(`SELECT COUNT(*), SUM(amount) FROM events WHERE kind = 'bulk'`)
	if q.Rows[0][0].I != 2 || q.Rows[0][1].F != 1.0 {
		t.Fatalf("final state = %v", q.Rows)
	}
}

func TestPreparedInTransaction(t *testing.T) {
	db := preparedDB(t)
	st, err := db.Prepare(`INSERT INTO events VALUES (?, 'txn', 1.0, DATE '2013-08-01')`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	sess := db.Session()
	defer sess.Close()
	ctx := context.Background()
	if _, err := sess.Exec(`BEGIN`); err != nil {
		t.Fatalf("BEGIN: %v", err)
	}
	if _, err := sess.ExecPrepared(ctx, st, NewInt(100)); err != nil {
		t.Fatalf("ExecPrepared: %v", err)
	}
	// Uncommitted: invisible to autocommit readers.
	if r := db.MustExec(`SELECT COUNT(*) FROM events WHERE kind = 'txn'`); r.Rows[0][0].I != 0 {
		t.Fatalf("uncommitted insert visible: %v", r.Rows)
	}
	if _, err := sess.Exec(`COMMIT`); err != nil {
		t.Fatalf("COMMIT: %v", err)
	}
	if r := db.MustExec(`SELECT COUNT(*) FROM events WHERE kind = 'txn'`); r.Rows[0][0].I != 1 {
		t.Fatalf("committed insert missing: %v", r.Rows)
	}
}

func TestPreparedErrors(t *testing.T) {
	db := preparedDB(t)
	if _, err := db.Exec(`SELECT * FROM events WHERE id = ?`); err == nil {
		t.Fatal("placeholder through Exec should error")
	}
	if _, err := db.Prepare(`SELECT * FROM nosuch WHERE id = ?`); err == nil {
		t.Fatal("Prepare against a missing table should error")
	}
	st, err := db.Prepare(`SELECT * FROM events WHERE id = ?`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := st.Exec(); err == nil {
		t.Fatal("wrong argument count should error")
	}
}
