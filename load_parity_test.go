package apollo

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"apollo/internal/load"
	"apollo/internal/sqltypes"
)

// --- load/insert parity property test ---
//
// Random schemas and random row sets, loaded three ways — CSV through
// db.Load, binary through db.Load, and multi-row SQL INSERTs — must be
// indistinguishable to every query. The loaded tables take the direct
// compressed path for most rows; the INSERT table goes through per-row delta
// inserts and the tuple mover's threshold logic, so agreement here pins the
// whole direct-load path (decode, coercion, parallel segment build, atomic
// publish) against the trickle path.

var parityTypes = []sqltypes.Type{
	sqltypes.Int64, sqltypes.Float64, sqltypes.Bool, sqltypes.String, sqltypes.Date,
}

func randParitySchema(rng *rand.Rand) []sqltypes.Column {
	cols := make([]sqltypes.Column, 2+rng.Intn(4))
	for i := range cols {
		cols[i] = sqltypes.Column{
			Name:     fmt.Sprintf("c%d", i),
			Typ:      parityTypes[rng.Intn(len(parityTypes))],
			Nullable: true,
		}
	}
	// Guarantee at least one groupable and one summable column.
	cols[0].Typ = sqltypes.String
	cols[1].Typ = sqltypes.Int64
	return cols
}

func randParityValue(rng *rand.Rand, typ sqltypes.Type) sqltypes.Value {
	if rng.Intn(8) == 0 {
		return sqltypes.NewNull(typ)
	}
	switch typ {
	case sqltypes.Int64:
		return sqltypes.NewInt(rng.Int63n(2000) - 1000)
	case sqltypes.Float64:
		return sqltypes.NewFloat(float64(rng.Intn(4000))/8 - 250)
	case sqltypes.Bool:
		return sqltypes.NewBool(rng.Intn(2) == 0)
	case sqltypes.Date:
		return sqltypes.NewDate(int64(rng.Intn(20000)))
	default:
		// Low cardinality plus awkward content: quotes, commas, newlines,
		// unicode — everything CSV quoting has to survive.
		pool := []string{"plain", `qu"ote`, "com,ma", "new\nline", "tab\there", "ünïcode", "", "  padded  "}
		return sqltypes.NewString(fmt.Sprintf("%s-%d", pool[rng.Intn(len(pool))], rng.Intn(23)))
	}
}

// csvEncode renders rows with encoding/csv using the loader's NULL
// convention.
func csvEncode(t *testing.T, cols []sqltypes.Column, rows []sqltypes.Row) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	rec := make([]string, len(cols))
	for _, row := range rows {
		for i, v := range row {
			rec[i] = load.CSVField(v)
			// An empty non-null string would read back as empty string (the
			// loader's convention matches), but guard the generator anyway.
			if !v.Null && v.Typ == sqltypes.String && rec[i] == load.NullToken {
				t.Fatalf("generator produced the NULL token as a live string")
			}
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	return buf.Bytes()
}

func sqlLiteral(v sqltypes.Value) string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case sqltypes.String:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case sqltypes.Date:
		return "DATE '" + sqltypes.DateToString(v.I) + "'"
	case sqltypes.Bool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}

func insertAll(t *testing.T, db *DB, table string, cols []sqltypes.Column, rows []sqltypes.Row) {
	t.Helper()
	const chunk = 50
	for i := 0; i < len(rows); i += chunk {
		end := i + chunk
		if end > len(rows) {
			end = len(rows)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
		for j, row := range rows[i:end] {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('(')
			for k, v := range row {
				if k > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(sqlLiteral(v))
			}
			sb.WriteByte(')')
		}
		if _, err := db.Exec(sb.String()); err != nil {
			t.Fatalf("insert chunk: %v", err)
		}
	}
}

func createParityTable(t *testing.T, db *DB, name string, cols []sqltypes.Column) {
	t.Helper()
	var defs []string
	for _, c := range cols {
		defs = append(defs, fmt.Sprintf("%s %s", c.Name, c.Typ))
	}
	stmt := fmt.Sprintf("CREATE TABLE %s (%s) WITH (rowgroup_size=128, bulk_threshold=64)", name, strings.Join(defs, ", "))
	if _, err := db.Exec(stmt); err != nil {
		t.Fatal(err)
	}
}

func parityQueries(cols []sqltypes.Column) []string {
	qs := []string{
		"SELECT * FROM %s",
		"SELECT COUNT(*) FROM %s",
		"SELECT c0, COUNT(*), SUM(c1) FROM %s GROUP BY c0",
		"SELECT MIN(c1), MAX(c1) FROM %s",
		"SELECT c0 FROM %s WHERE c1 > 0",
	}
	for _, c := range cols {
		if c.Typ == sqltypes.Float64 {
			qs = append(qs, "SELECT SUM("+c.Name+") FROM %s")
			break
		}
	}
	return qs
}

func TestLoadInsertParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			db := Open(Config{RowGroupSize: 128, BulkLoadThreshold: 64, Parallel: 2, RandSeed: 7})
			defer db.Close()
			cols := randParitySchema(rng)
			nRows := 300 + rng.Intn(500)
			rows := make([]sqltypes.Row, nRows)
			for i := range rows {
				row := make(sqltypes.Row, len(cols))
				for j, c := range cols {
					row[j] = randParityValue(rng, c.Typ)
				}
				rows[i] = row
			}

			createParityTable(t, db, "via_csv", cols)
			createParityTable(t, db, "via_bin", cols)
			createParityTable(t, db, "via_ins", cols)

			res, err := db.Load(context.Background(), LoadOptions{
				Table: "via_csv", Format: "csv", Reader: bytes.NewReader(csvEncode(t, cols, rows)),
			})
			if err != nil {
				t.Fatalf("csv load: %v (dead: %+v)", err, res.DeadLetters)
			}
			if res.RowsLoaded != nRows || len(res.DeadLetters) != 0 {
				t.Fatalf("csv load counters: %+v, want %d rows and no dead letters", res, nRows)
			}
			// Bulk acceptance: everything except a below-threshold remainder
			// compresses directly.
			if res.RowsDelta >= 64 {
				t.Fatalf("csv load left %d rows in the delta store (threshold 64)", res.RowsDelta)
			}

			schema := sqltypes.NewSchema(cols...)
			var bin []byte
			for _, row := range rows {
				bin = load.AppendFrame(bin, schema, row)
			}
			bres, err := db.Load(context.Background(), LoadOptions{
				Table: "via_bin", Format: "binary", Reader: bytes.NewReader(bin), QueueDepth: 64,
			})
			if err != nil {
				t.Fatalf("binary load: %v", err)
			}
			if bres.RowsLoaded != nRows || len(bres.DeadLetters) != 0 {
				t.Fatalf("binary load counters: %+v", bres)
			}

			insertAll(t, db, "via_ins", cols, rows)

			for _, q := range parityQueries(cols) {
				ref, err := db.Query(fmt.Sprintf(q, "via_ins"))
				if err != nil {
					t.Fatalf("query %q on via_ins: %v", q, err)
				}
				want := resultMultiset(ref)
				for _, tbl := range []string{"via_csv", "via_bin"} {
					got, err := db.Query(fmt.Sprintf(q, tbl))
					if err != nil {
						t.Fatalf("query %q on %s: %v", q, tbl, err)
					}
					if !sameMultiset(want, resultMultiset(got)) {
						t.Fatalf("parity broken for %q: %s disagrees with via_ins\ninsert: %v\nloaded: %v",
							q, tbl, want, resultMultiset(got))
					}
				}
			}
		})
	}
}

// TestCopyStatementParity drives the same pipeline through the SQL COPY
// statement (file input, WITH options) and cross-checks against INSERT.
func TestCopyStatementParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := Open(Config{RowGroupSize: 256, BulkLoadThreshold: 64, Parallel: 2})
	defer db.Close()
	cols := randParitySchema(rng)
	rows := make([]sqltypes.Row, 777)
	for i := range rows {
		row := make(sqltypes.Row, len(cols))
		for j, c := range cols {
			row[j] = randParityValue(rng, c.Typ)
		}
		rows[i] = row
	}
	createParityTable(t, db, "cp", cols)
	createParityTable(t, db, "ins", cols)

	dir := t.TempDir()
	path := filepath.Join(dir, "rows.csv")
	var hdr []string
	for _, c := range cols {
		hdr = append(hdr, c.Name)
	}
	data := append([]byte(strings.Join(hdr, ",")+"\n"), csvEncode(t, cols, rows)...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := db.Exec(fmt.Sprintf("COPY cp FROM '%s' WITH (format='csv', header, batch_rows=256)", path))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != len(rows) {
		t.Fatalf("COPY affected %d, want %d (message: %s)", res.Affected, len(rows), res.Message)
	}
	insertAll(t, db, "ins", cols, rows)
	for _, q := range parityQueries(cols) {
		ref, err := db.Query(fmt.Sprintf(q, "ins"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.Query(fmt.Sprintf(q, "cp"))
		if err != nil {
			t.Fatal(err)
		}
		if !sameMultiset(resultMultiset(ref), resultMultiset(got)) {
			t.Fatalf("COPY parity broken for %q", q)
		}
	}
	// COPY inside a transaction is rejected (compressed groups carry no
	// per-row version state to roll back).
	sess := db.Session()
	defer sess.Close()
	if _, err := sess.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(fmt.Sprintf("COPY cp FROM '%s'", path)); err == nil {
		t.Fatal("COPY inside a transaction must be rejected")
	}
	if _, err := sess.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

// TestLoadSnapshotNeverSeesPartialGroup runs readers against a table while a
// bulk load publishes groups of exactly G rows: every concurrent COUNT(*)
// must be a multiple of G — a reader that catches a group halfway published
// would break the atomic-publish contract.
func TestLoadSnapshotNeverSeesPartialGroup(t *testing.T) {
	const g = 256
	const groups = 24
	db := Open(Config{RowGroupSize: g, BulkLoadThreshold: g, Parallel: 2})
	defer db.Close()
	if _, err := db.Exec(fmt.Sprintf("CREATE TABLE t (id BIGINT, v VARCHAR) WITH (rowgroup_size=%d, bulk_threshold=%d)", g, g)); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	for i := 0; i < g*groups; i++ {
		fmt.Fprintf(&sb, "%d,v-%d\n", i, i%13)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var bad error
	var badMu sync.Mutex
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := db.Query("SELECT COUNT(*) FROM t")
				if err != nil {
					continue // racing table registration
				}
				n := res.Rows[0][0].I
				if n%g != 0 {
					badMu.Lock()
					bad = fmt.Errorf("reader saw %d rows mid-load — a partial row group (group size %d)", n, g)
					badMu.Unlock()
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	res, err := db.Load(context.Background(), LoadOptions{
		Table: "t", Reader: strings.NewReader(sb.String()), BatchRows: g, QueueDepth: 512,
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Fatal(bad)
	}
	if res.RowsDirect != g*groups || res.RowsDelta != 0 || res.Groups != groups {
		t.Fatalf("load should have been all-direct: %+v", res)
	}
	st, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.CompressedRows != g*groups || stats.DeltaRows != 0 {
		t.Fatalf("stats: %+v, want %d compressed / 0 delta", stats, g*groups)
	}
}
