package apollo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// typedFailure reports whether err is one of the structured error families
// every failed query is required to return: a transient storage fault, a
// corruption (checksum) error, a query-execution error, or a context error.
func typedFailure(err error) bool {
	return IsTransientError(err) || IsCorruptionError(err) || IsQueryError(err) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// waitForGoroutines polls until the goroutine count returns to (near) base,
// failing the test if workers leak. A small slack absorbs runtime-internal
// goroutines (timers, GC) that come and go.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: started with %d goroutines, now %d", base, runtime.NumGoroutine())
}

// loadBig creates a multi-row-group table with ngroups*500 rows.
func loadBig(t *testing.T, db *DB, name string, ngroups int) {
	t.Helper()
	schema := &Schema{Cols: []Column{
		{Name: "id", Typ: Int64},
		{Name: "v", Typ: Int64},
		{Name: "w", Typ: Float64},
	}}
	tb, err := db.CreateTable(name, schema)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, ngroups*500)
	for i := range rows {
		rows[i] = Row{NewInt(int64(i)), NewInt(int64(i % 97)), NewFloat(float64(i) * 0.5)}
	}
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
}

// TestQueryDeadlineExceeded is the acceptance scenario: a query over a
// multi-row-group table under a 50ms deadline, with slow cold storage reads,
// must come back with context.DeadlineExceeded promptly and without leaking
// scan workers.
func TestQueryDeadlineExceeded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferPoolBytes = 0 // every segment read is a cold read
	cfg.RowGroupSize = 500
	cfg.BulkLoadThreshold = 100
	cfg.Parallel = 4
	cfg.TupleMoverInterval = 0
	db := Open(cfg)
	defer db.Close()
	loadBig(t, db, "big", 40)

	// ~120 slow segment reads across 4 workers blows well past 50ms.
	db.InjectStorageFaults(FaultConfig{ReadLatency: 5 * time.Millisecond})
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := db.QueryContext(ctx, "SELECT SUM(v) FROM big WHERE w >= 0")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline response not prompt: %v", elapsed)
	}
	waitForGoroutines(t, base)
}

// TestCancelParallelScanMidStream cancels a large parallel scan while it is
// producing batches and asserts the query returns context.Canceled promptly
// and all scan workers exit.
func TestCancelParallelScanMidStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferPoolBytes = 0
	cfg.RowGroupSize = 500
	cfg.BulkLoadThreshold = 100
	cfg.Parallel = 4
	cfg.TupleMoverInterval = 0
	db := Open(cfg)
	defer db.Close()
	loadBig(t, db, "big", 40)

	db.InjectStorageFaults(FaultConfig{ReadLatency: 2 * time.Millisecond})
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	start := time.Now()
	_, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM big WHERE v >= 0")
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	waitForGoroutines(t, base)
}

// TestChaosStorageFaults runs concurrent inserts, deletes, and scans against
// a table with a 5% storage fault rate. The process must not panic, every
// failed statement must return a structured (typed) error, and no goroutines
// may leak.
func TestChaosStorageFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferPoolBytes = 0 // route every read through the injector
	cfg.RowGroupSize = 400
	cfg.BulkLoadThreshold = 100
	cfg.Parallel = 2
	cfg.TupleMoverInterval = 2 * time.Millisecond
	db := Open(cfg)
	defer db.Close()

	db.MustExec("CREATE TABLE chaos (id BIGINT, v BIGINT)")
	tb, err := db.Table("chaos")
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]Row, 2000)
	for i := range seed {
		seed[i] = Row{NewInt(int64(i)), NewInt(int64(i % 13))}
	}
	if err := tb.BulkLoad(seed); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	db.InjectStorageFaults(FaultConfig{
		ReadErrorRate:  0.05,
		WriteErrorRate: 0.05,
		CorruptionRate: 0.01,
		Seed:           1,
	})

	var mu sync.Mutex
	var untyped []error
	record := func(err error) {
		if err == nil || typedFailure(err) {
			return
		}
		mu.Lock()
		untyped = append(untyped, err)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(3)
		go func(w int) { // inserter (enough rows to close delta stores, so
			// the background mover also compresses under fault load)
			defer wg.Done()
			for i := 0; i < 250; i++ {
				_, err := db.Exec(fmt.Sprintf("INSERT INTO chaos VALUES (%d, %d)", 100000+w*1000+i, i))
				record(err)
			}
		}(w)
		go func(w int) { // deleter
			defer wg.Done()
			for i := 0; i < 60; i++ {
				_, err := db.Exec(fmt.Sprintf("DELETE FROM chaos WHERE id = %d", w*800+i))
				record(err)
			}
		}(w)
		go func(w int) { // scanner
			defer wg.Done()
			for i := 0; i < 60; i++ {
				_, err := db.Query("SELECT SUM(v) FROM chaos WHERE v >= 0")
				record(err)
			}
		}(w)
	}
	wg.Wait()

	if len(untyped) > 0 {
		t.Fatalf("%d failures were not structured errors; first: %v", len(untyped), untyped[0])
	}

	// With faults cleared the engine must be fully functional again: injected
	// corruption only ever flipped bits on read-side copies, never at rest.
	db.ClearStorageFaults()
	waitForGoroutines(t, base)
	res, err := db.Query("SELECT COUNT(*) FROM chaos WHERE v >= 0")
	if err != nil {
		t.Fatalf("post-chaos query failed: %v", err)
	}
	if res.Rows[0][0].I == 0 {
		t.Fatal("post-chaos table empty")
	}
	h := tb.Health()
	t.Logf("chaos health: moves=%d failures=%d consecutive=%d lastErr=%v",
		h.Moves, h.Failures, h.ConsecutiveFailures, h.LastError)
}

// TestMoverSelfHealing drives the tuple mover into persistent write failure,
// watches the health struct report it (consecutive failures, last error,
// backoff), then clears the fault and asserts the mover recovers on its own
// with no data loss.
func TestMoverSelfHealing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RowGroupSize = 200
	cfg.TupleMoverInterval = 2 * time.Millisecond
	db := Open(cfg)
	defer db.Close()

	schema := &Schema{Cols: []Column{{Name: "k", Typ: Int64}}}
	tb, err := db.CreateTable("heal", schema)
	if err != nil {
		t.Fatal(err)
	}

	db.InjectStorageFaults(FaultConfig{WriteErrorRate: 1, Seed: 7})
	for i := 0; i < 250; i++ { // closes one delta store at 200 rows
		if err := tb.Insert(Row{NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}

	var h TableHealth
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h = tb.Health()
		if h.Failures >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.Failures < 2 {
		t.Fatalf("mover never reported failures: %+v", h)
	}
	if !h.MoverRunning || h.ConsecutiveFailures == 0 || h.LastError == nil || h.Backoff == 0 {
		t.Fatalf("unhealthy state not surfaced: %+v", h)
	}
	if !IsTransientError(h.LastError) {
		t.Fatalf("mover error not typed: %v", h.LastError)
	}

	db.ClearStorageFaults()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h = tb.Health()
		if h.ConsecutiveFailures == 0 && h.Moves >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.ConsecutiveFailures != 0 || h.Moves < 1 || h.Backoff != 0 {
		t.Fatalf("mover did not heal: %+v", h)
	}
	res := db.MustExec("SELECT COUNT(*) FROM heal")
	if res.Rows[0][0].I != 250 {
		t.Fatalf("rows lost across mover failures: %v", res.Rows[0][0])
	}
}
