package apollo_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apollo"
)

func txnConfig() apollo.Config {
	cfg := apollo.DefaultConfig()
	cfg.RowGroupSize = 32
	cfg.BulkLoadThreshold = 1 << 20 // keep DML on the trickle path
	cfg.TupleMoverInterval = 2 * time.Millisecond
	return cfg
}

func mustRows(t *testing.T, db *apollo.DB, q string) []apollo.Row {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res.Rows
}

func TestTxnCommitAtomicVisibility(t *testing.T) {
	db := apollo.Open(txnConfig())
	defer db.Close()
	db.MustExec("CREATE TABLE a (id BIGINT, v VARCHAR)")
	db.MustExec("CREATE TABLE b (id BIGINT)")
	db.MustExec("INSERT INTO a VALUES (1, 'base')")

	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO a VALUES (2, 'txn')"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO b VALUES (10)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DELETE FROM a WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	// Own writes visible inside the transaction...
	rows, err := tx.Query("SELECT id FROM a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0][0].I != 2 {
		t.Fatalf("inside txn: got %v, want only id=2", rows.Rows)
	}
	// ...and invisible outside until commit.
	if got := mustRows(t, db, "SELECT id FROM a"); len(got) != 1 || got[0][0].I != 1 {
		t.Fatalf("outside txn before commit: got %v, want only id=1", got)
	}
	if got := mustRows(t, db, "SELECT id FROM b"); len(got) != 0 {
		t.Fatalf("outside txn before commit: b has %v, want empty", got)
	}

	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := mustRows(t, db, "SELECT id FROM a"); len(got) != 1 || got[0][0].I != 2 {
		t.Fatalf("after commit: got %v, want only id=2", got)
	}
	if got := mustRows(t, db, "SELECT id FROM b"); len(got) != 1 || got[0][0].I != 10 {
		t.Fatalf("after commit: b = %v, want [10]", got)
	}

	// Finished transaction rejects further use.
	if _, err := tx.Exec("INSERT INTO b VALUES (11)"); !errors.Is(err, apollo.ErrTxnDone) {
		t.Fatalf("exec after commit: %v, want ErrTxnDone", err)
	}
	if err := tx.Rollback(ctx); !errors.Is(err, apollo.ErrTxnDone) {
		t.Fatalf("rollback after commit: %v, want ErrTxnDone", err)
	}
}

func TestTxnRollbackDiscards(t *testing.T) {
	db := apollo.Open(txnConfig())
	defer db.Close()
	db.MustExec("CREATE TABLE r (id BIGINT, v BIGINT)")
	db.MustExec("INSERT INTO r VALUES (1, 100)")

	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE r SET v = 200 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO r VALUES (2, 2)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	got := mustRows(t, db, "SELECT id, v FROM r")
	if len(got) != 1 || got[0][0].I != 1 || got[0][1].I != 100 {
		t.Fatalf("after rollback: %v, want [[1 100]]", got)
	}
}

func TestTxnSnapshotReadersAreStable(t *testing.T) {
	db := apollo.Open(txnConfig())
	defer db.Close()
	db.MustExec("CREATE TABLE s (id BIGINT)")
	db.MustExec("INSERT INTO s VALUES (1), (2), (3)")

	ctx := context.Background()
	reader, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent committed writes: a delete and inserts.
	db.MustExec("DELETE FROM s WHERE id = 2")
	db.MustExec("INSERT INTO s VALUES (4)")

	rows, err := reader.Query("SELECT id FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 3 {
		t.Fatalf("snapshot reader sees %d rows, want the 3 from its snapshot (got %v)", len(rows.Rows), rows.Rows)
	}
	if err := reader.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// A fresh snapshot sees the new state.
	if got := mustRows(t, db, "SELECT id FROM s"); len(got) != 3 {
		t.Fatalf("current state has %d rows, want 3 (1,3,4)", len(got))
	}
}

func TestTxnWriteConflictFirstWriterWins(t *testing.T) {
	db := apollo.Open(txnConfig())
	defer db.Close()
	db.MustExec("CREATE TABLE c (id BIGINT, v BIGINT)")
	db.MustExec("INSERT INTO c VALUES (1, 0), (2, 0)")

	ctx := context.Background()
	tx1, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Exec("UPDATE c SET v = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// tx2 writes the same row while tx1's provisional write is pending.
	_, err = tx2.Exec("UPDATE c SET v = 2 WHERE id = 1")
	if !errors.Is(err, apollo.ErrWriteConflict) {
		t.Fatalf("second writer got %v, want ErrWriteConflict", err)
	}
	// The conflict rolled tx2 back; it is unusable now.
	if _, err := tx2.Exec("SELECT id FROM c"); !errors.Is(err, apollo.ErrTxnDone) {
		t.Fatalf("conflicted txn still usable: %v", err)
	}
	if err := tx1.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// A transaction whose snapshot predates a commit conflicts too.
	tx3, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("UPDATE c SET v = 9 WHERE id = 2") // autocommit, after tx3's snapshot
	if _, err := tx3.Exec("UPDATE c SET v = 3 WHERE id = 2"); !errors.Is(err, apollo.ErrWriteConflict) {
		t.Fatalf("stale-snapshot writer got %v, want ErrWriteConflict", err)
	}

	// Retry from Begin succeeds: the winner is settled now.
	tx4, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx4.Exec("UPDATE c SET v = 3 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if err := tx4.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	got := mustRows(t, db, "SELECT v FROM c WHERE id = 2")
	if len(got) != 1 || got[0][0].I != 3 {
		t.Fatalf("retried update lost: %v", got)
	}
}

func TestTxnSQLSessionFlow(t *testing.T) {
	db := apollo.Open(txnConfig())
	defer db.Close()
	db.MustExec("CREATE TABLE q (id BIGINT)")

	s1 := db.Session()
	defer s1.Close()
	s2 := db.Session()
	defer s2.Close()

	if _, err := s1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if !s1.InTxn() {
		t.Fatal("session not in txn after BEGIN")
	}
	if _, err := s1.Exec("INSERT INTO q VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	// The other session (autocommit) does not see it.
	res, err := s2.Exec("SELECT id FROM q")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("uncommitted write visible to other session: %v", res.Rows)
	}
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if s1.InTxn() {
		t.Fatal("session still in txn after COMMIT")
	}
	res, err = s2.Exec("SELECT id FROM q")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("committed write invisible: %v", res.Rows)
	}

	// Transaction-control statements need transaction state to make sense.
	if _, err := s1.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT with no open transaction succeeded")
	}
	if _, err := s1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("BEGIN"); err == nil {
		t.Fatal("nested BEGIN succeeded")
	}
	if _, err := s1.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}

	// DDL inside a transaction is rejected; the engine-level (sessionless)
	// path rejects transaction control outright.
	if _, err := s1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("CREATE TABLE nope (x BIGINT)"); err == nil {
		t.Fatal("DDL inside transaction succeeded")
	}
	if _, err := s1.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("BEGIN"); err == nil {
		t.Fatal("BEGIN outside a session succeeded")
	}
}

// TestTxnCloseUnderLoad drives concurrent transactional writers while the
// database shuts down. Every in-flight transaction must resolve to ErrClosed
// (or finish cleanly just before the close); nothing may hang or panic, and
// the manager must reject new transactions afterwards.
func TestTxnCloseUnderLoad(t *testing.T) {
	db := apollo.Open(txnConfig())
	db.MustExec("CREATE TABLE load (sess BIGINT, n BIGINT)")

	ctx := context.Background()
	const writers = 8
	var wg sync.WaitGroup
	var unexpected atomic.Value
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for n := 0; ; n++ {
				tx, err := db.Begin(ctx)
				if err != nil {
					if !errors.Is(err, apollo.ErrClosed) {
						unexpected.Store(fmt.Errorf("begin: %w", err))
					}
					return
				}
				_, err = tx.Exec(fmt.Sprintf("INSERT INTO load VALUES (%d, %d)", w, n))
				if err == nil {
					err = tx.Commit(ctx)
				} else {
					tx.Rollback(ctx)
				}
				if err != nil && !errors.Is(err, apollo.ErrClosed) && !errors.Is(err, apollo.ErrTxnDone) {
					unexpected.Store(fmt.Errorf("writer %d txn %d: %w", w, n, err))
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let the writers get going
	done := make(chan struct{})
	go func() { db.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung with transactions in flight")
	}
	wg.Wait()
	if err, ok := unexpected.Load().(error); ok && err != nil {
		t.Fatalf("writer saw unexpected error during shutdown: %v", err)
	}
	if _, err := db.Begin(ctx); !errors.Is(err, apollo.ErrClosed) {
		t.Fatalf("Begin after Close: %v, want ErrClosed", err)
	}
}

// TestTxnDurability commits transactions in a durable database and verifies
// they survive reopen — and that a transaction left open at Close (its
// TBegin and DML are in the log, its TCommit is not) is rolled back by
// recovery.
func TestTxnDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := txnConfig()
	cfg.FsyncPolicy = "always"

	db, err := apollo.OpenDir(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE d (id BIGINT, v VARCHAR)")
	ctx := context.Background()

	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO d VALUES (1, 'committed'), (2, 'committed')"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Leave a second transaction in flight across the close.
	open, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := open.Exec("INSERT INTO d VALUES (3, 'uncommitted')"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := apollo.OpenDir(dir, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	got := mustRows(t, db2, "SELECT id FROM d")
	if len(got) != 2 {
		t.Fatalf("recovered %d rows, want exactly the 2 committed (got %v)", len(got), got)
	}
	for _, r := range got {
		if r[0].I == 3 {
			t.Fatal("uncommitted transaction resurrected by recovery")
		}
	}
}

// TestTxnGroupCommit commits from many sessions concurrently under
// fsync=always and checks the fsync counter grew by far less than one fsync
// per commit — the cross-session group commit.
func TestTxnGroupCommit(t *testing.T) {
	dir := t.TempDir()
	cfg := txnConfig()
	cfg.FsyncPolicy = "always"
	db, err := apollo.OpenDir(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.MustExec("CREATE TABLE g (sess BIGINT, n BIGINT)")

	const sessions = 8
	const commitsPer = 25
	before := db.MetricsSnapshot()["apollo_wal_fsyncs_total"]
	ctx := context.Background()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for n := 0; n < commitsPer; n++ {
				tx, err := db.Begin(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tx.Exec(fmt.Sprintf("INSERT INTO g VALUES (%d, %d)", s, n)); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	fsyncs := db.MetricsSnapshot()["apollo_wal_fsyncs_total"] - before
	commits := float64(sessions * commitsPer)
	if got := mustRows(t, db, "SELECT sess FROM g"); len(got) != int(commits) {
		t.Fatalf("lost commits: %d rows, want %d", len(got), int(commits))
	}
	// Each transaction appends several records (TBegin, DML, TCommit) but
	// only its commit waits for durability, so even with zero cross-session
	// overlap the ceiling is ~one fsync per commit (plus rotations). Actual
	// cross-session sharing depends on scheduler overlap — on a single-CPU
	// host commits may serialize perfectly; the deterministic sharing test is
	// wal.TestWaitDurableSharesFsync.
	if fsyncs > commits*1.2+20 {
		t.Errorf("fsync per record, not per commit: %.0f fsyncs for %.0f commits", fsyncs, commits)
	}
	t.Logf("group commit: %.0f commits, %.0f fsyncs (%.2f fsyncs/commit)", commits, fsyncs, fsyncs/commits)
}

// TestTxnSnapshotPropertyUnderChurn is the snapshot-consistency property
// test: writer transactions keep a per-group invariant (the values of each
// group sum to zero) by always writing balanced pairs — insert +x and -x
// together, delete both together — while concurrent readers under snapshot
// isolation and the background tuple mover churn delta stores into
// compressed row groups. No reader may ever observe a half-applied
// transaction (nonzero group sum, odd row count) at any point, including
// rows in mid-move stores; after reopening the durable variant the invariant
// must also hold post-replay.
func TestTxnSnapshotPropertyUnderChurn(t *testing.T) {
	for _, durable := range []bool{false, true} {
		name := "inmemory"
		if durable {
			name = "durable"
		}
		t.Run(name, func(t *testing.T) {
			cfg := txnConfig()
			cfg.RowGroupSize = 16 // aggressive moves
			var db *apollo.DB
			var dir string
			if durable {
				dir = t.TempDir()
				cfg.FsyncPolicy = "off" // throughput; atomicity must hold regardless
				var err error
				db, err = apollo.OpenDir(dir, cfg)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				db = apollo.Open(cfg)
			}
			db.MustExec("CREATE TABLE p (grp BIGINT, tag BIGINT, val BIGINT)")

			ctx := context.Background()
			const writers = 4
			const readers = 3
			const groups = 4
			duration := 400 * time.Millisecond
			stop := make(chan struct{})
			var wg sync.WaitGroup

			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 7))
					tag := w * 1_000_000
					var live []int // committed tags this writer may delete
					for {
						select {
						case <-stop:
							return
						default:
						}
						tx, err := db.Begin(ctx)
						if err != nil {
							t.Error(err)
							return
						}
						g := rng.Intn(groups)
						var stmtErr error
						del := len(live) > 0 && rng.Intn(3) == 0
						if del {
							victim := live[rng.Intn(len(live))]
							// Deletes both the +x and -x row of the pair.
							_, stmtErr = tx.Exec(fmt.Sprintf("DELETE FROM p WHERE tag = %d", victim))
						} else {
							tag++
							x := rng.Intn(50) + 1
							_, stmtErr = tx.Exec(fmt.Sprintf("INSERT INTO p VALUES (%d, %d, %d)", g, tag, x))
							if stmtErr == nil {
								_, stmtErr = tx.Exec(fmt.Sprintf("INSERT INTO p VALUES (%d, %d, %d)", g, tag, -x))
							}
						}
						if stmtErr != nil {
							if errors.Is(stmtErr, apollo.ErrWriteConflict) {
								continue // conflict already rolled the txn back
							}
							t.Errorf("writer %d: %v", w, stmtErr)
							tx.Rollback(ctx)
							return
						}
						if rng.Intn(8) == 0 {
							tx.Rollback(ctx)
							continue
						}
						if err := tx.Commit(ctx); err != nil {
							t.Errorf("writer %d commit: %v", w, err)
							return
						}
						if del {
							// Deleted tag is gone; forget it (duplicates are
							// impossible since tags are writer-unique).
						} else {
							live = append(live, tag)
						}
					}
				}(w)
			}

			check := func(rows []apollo.Row, when string) {
				sums := map[int64]int64{}
				counts := map[int64]int64{}
				for _, r := range rows {
					sums[r[0].I] += r[1].I
					counts[r[0].I]++
				}
				for g, s := range sums {
					if s != 0 {
						t.Errorf("%s: group %d sums to %d — torn transaction visible", when, g, s)
					}
				}
				for g, c := range counts {
					if c%2 != 0 {
						t.Errorf("%s: group %d has odd row count %d — half a pair visible", when, g, c)
					}
				}
			}

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res, err := db.Query("SELECT grp, val FROM p")
						if err != nil {
							t.Errorf("reader %d: %v", r, err)
							return
						}
						check(res.Rows, fmt.Sprintf("reader %d", r))
					}
				}(r)
			}

			time.Sleep(duration)
			close(stop)
			wg.Wait()
			check(mustRows(t, db, "SELECT grp, val FROM p"), "final")
			db.Close()

			if durable {
				// Post-replay: reopen and re-verify the invariant. The log may
				// end mid-transaction (writers killed by stop between DML and
				// COMMIT never logged a TCommit) — recovery must discard those.
				cfg2 := txnConfig()
				cfg2.FsyncPolicy = "off"
				db2, err := apollo.OpenDir(dir, cfg2)
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				defer db2.Close()
				check(mustRows(t, db2, "SELECT grp, val FROM p"), "post-replay")
			}
		})
	}
}
