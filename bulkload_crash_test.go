package apollo_test

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"apollo"
	"apollo/internal/wal/crashtest"
)

// bulkRecovered recovers a bulk-load crash directory and returns the number
// of recovered rows N after asserting the structural invariants that hold at
// ANY crash point:
//
//   - the recovered ids are exactly [0, N): the loader fed one contiguous
//     ascending sequence, group publishes are atomic, and WAL replay is
//     ordered, so there are never holes or duplicates;
//   - the compressed portion is whole groups only: CompressedRows is a
//     multiple of the group size and never exceeds the direct phase — a torn
//     TGroupPublish must vanish entirely, not surface as a partial group;
//   - physical placement survives recovery: direct rows are compressed,
//     fallback rows are delta (the tuple mover is off, so nothing migrates).
//
// N == -1 means the table itself never became durable, legitimate only when
// nothing was acknowledged (the caller checks).
func bulkRecovered(t *testing.T, dir, policy string) int {
	t.Helper()
	db, err := apollo.OpenDir(dir, crashtest.BulkConfig(policy))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db.Close()
	tb, err := db.Table("bl")
	if err != nil {
		return -1
	}
	res, err := db.Query("SELECT id FROM bl")
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	ids := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		ids = append(ids, r[0].I)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("recovered ids are not a contiguous prefix: ids[%d] = %d (a hole means a torn group or reordered replay)", i, id)
		}
	}
	n := len(ids)

	directRows := crashtest.BulkRounds * crashtest.BulkGroupRows
	wantCompressed := n
	if wantCompressed > directRows {
		wantCompressed = directRows
	}
	st := tb.Stats()
	if st.CompressedRows%crashtest.BulkGroupRows != 0 {
		t.Fatalf("torn row group survived recovery: %d compressed rows is not a multiple of %d",
			st.CompressedRows, crashtest.BulkGroupRows)
	}
	if st.CompressedRows != wantCompressed {
		t.Fatalf("direct-path rows not recovered as compressed groups: %d compressed, want %d (of %d total)",
			st.CompressedRows, wantCompressed, n)
	}
	if st.DeltaRows != n-wantCompressed {
		t.Fatalf("delta fallback rows misplaced after recovery: %d delta, want %d (of %d total)",
			st.DeltaRows, n-wantCompressed, n)
	}
	if n <= directRows && n%crashtest.BulkGroupRows != 0 {
		t.Fatalf("recovered %d rows inside the direct phase — not a whole number of %d-row groups",
			n, crashtest.BulkGroupRows)
	}
	return n
}

// TestBulkLoadCrashMatrix kills the bulk-load workload (db.Load, the COPY
// pipeline) at randomized WAL byte offsets, so crash points land inside
// atomic group publishes and inside batched delta-fallback inserts. Recovery
// must show each row group whole or not at all — never torn — and under
// fsync=always every acknowledged load call (direct round or delta batch)
// must survive. Set APOLLO_CRASH_FULL=1 for the 24-point matrix (8 default).
func TestBulkLoadCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix spawns child processes; skipped in -short")
	}
	points := 8
	if os.Getenv("APOLLO_CRASH_FULL") != "" {
		points = 24
	}
	for _, policy := range []string{"always", "interval"} {
		t.Run("fsync="+policy, func(t *testing.T) {
			// Baseline run to completion: no crash, learn the WAL size and
			// where the CREATE TABLE ends so crash points land in load traffic.
			base := t.TempDir()
			if code := runChild(t, base, 0, policy, "APOLLO_CRASH_BULK=1"); code != 0 {
				t.Fatalf("baseline child crashed (exit %d)", code)
			}
			total, err := crashtest.ReadWALTotal(base)
			if err != nil {
				t.Fatal(err)
			}
			setup, err := crashtest.ReadSetupBytes(base)
			if err != nil {
				t.Fatal(err)
			}
			if total <= setup+1 {
				t.Fatalf("degenerate WAL: %d total bytes, %d setup", total, setup)
			}
			if n := bulkRecovered(t, base, policy); n != crashtest.BulkRowsAfter(crashtest.BulkUnits) {
				t.Fatalf("crash-free run recovered %d rows, want %d", n, crashtest.BulkRowsAfter(crashtest.BulkUnits))
			}

			rng := rand.New(rand.NewSource(20130423)) // deterministic matrix
			for i := 0; i < points; i++ {
				crashAt := setup + 1 + rng.Int63n(total-setup-1)
				t.Run(fmt.Sprintf("crashAt=%d", crashAt), func(t *testing.T) {
					dir := t.TempDir()
					if code := runChild(t, dir, crashAt, policy, "APOLLO_CRASH_BULK=1"); code != 3 {
						t.Fatalf("child survived armed crash point %d (exit %d)", crashAt, code)
					}
					acked, err := crashtest.ReadProgress(dir)
					if err != nil {
						t.Fatal(err)
					}
					n := bulkRecovered(t, dir, policy)
					if n == -1 {
						if acked != 0 {
							t.Fatalf("table lost after %d acknowledged load calls", acked)
						}
						return
					}
					// At most one load call was in flight beyond the
					// acknowledged count (progress is fsynced between calls).
					if ceil := crashtest.BulkRowsAfter(acked + 1); n > ceil {
						t.Fatalf("recovered %d rows, ahead of %d acknowledged calls + one in flight (max %d)", n, acked, ceil)
					}
					if floor := crashtest.BulkRowsAfter(acked); policy == "always" && n < floor {
						t.Fatalf("fsync=always lost acknowledged loads: recovered %d rows < %d acknowledged", n, floor)
					}
				})
			}
		})
	}
}
