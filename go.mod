module apollo

go 1.24
