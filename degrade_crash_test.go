package apollo_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"apollo"
	"apollo/internal/wal/crashtest"
)

// TestENOSPCRecoveryMatrix runs the disk-full degradation script — 20 acked
// inserts, deterministic ENOSPC rejecting a write (typed read-only, reads
// keep serving), auto-probe recovery, 40 more acked inserts — and kills the
// child at randomized WAL byte offsets across that whole cycle. At every
// kill point the recovered table must be exactly the contiguous prefix
// 1..K with K >= acked: the degrade/recover round trip never costs an
// acknowledged write and the rejected write never leaks a false ack.
func TestENOSPCRecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix spawns child processes; skipped in -short")
	}
	// Crash-free baseline: the full cycle completes and recovers cleanly.
	base := t.TempDir()
	if code := runChild(t, base, 0, "always", "APOLLO_CRASH_ENOSPC=1"); code != 0 {
		t.Fatalf("baseline enospc child failed (exit %d)", code)
	}
	total, err := crashtest.ReadWALTotal(base)
	if err != nil {
		t.Fatal(err)
	}
	db, err := apollo.OpenDir(base, crashtest.Config("always"))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	k, err := crashtest.VerifyContiguousPrefix(db, crashtest.EnospcTotal, crashtest.EnospcTotal)
	db.Close()
	if err != nil {
		t.Fatal(err)
	}
	if k != crashtest.EnospcTotal {
		t.Fatalf("crash-free run recovered prefix %d, want %d", k, crashtest.EnospcTotal)
	}

	points := 4
	if os.Getenv("APOLLO_CRASH_FULL") != "" {
		points = 16
	}
	rng := rand.New(rand.NewSource(20130622))
	for i := 0; i < points; i++ {
		crashAt := 17 + rng.Int63n(total-17)
		t.Run(fmt.Sprintf("crashAt=%d", crashAt), func(t *testing.T) {
			dir := t.TempDir()
			if code := runChild(t, dir, crashAt, "always", "APOLLO_CRASH_ENOSPC=1"); code != 3 {
				t.Fatalf("child survived armed crash point %d (exit %d)", crashAt, code)
			}
			acked, err := crashtest.ReadProgress(dir)
			if err != nil {
				t.Fatal(err)
			}
			db, err := apollo.OpenDir(dir, crashtest.Config("always"))
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer db.Close()
			if _, err := db.Table("k"); err != nil {
				if acked != 0 {
					t.Fatalf("table lost after %d acked inserts", acked)
				}
				return // crash hit the CREATE TABLE record itself
			}
			if _, err := crashtest.VerifyContiguousPrefix(db, acked, crashtest.EnospcTotal); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFsyncPoisonFailStop runs the fsync-failure script end to end in a
// child: a failed fsync rejects the in-flight insert, permanently poisons
// the writer (clearing the injection does not revive it), and reads keep
// serving. The parent then recovers the directory: every acked insert
// survives, and the poisoned, never-acked insert may appear at most as the
// next contiguous id (its bytes may have reached the disk even though the
// fsync lied) — never anything beyond.
func TestFsyncPoisonFailStop(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process; skipped in -short")
	}
	dir := t.TempDir()
	if code := runChild(t, dir, 0, "always", "APOLLO_CRASH_POISON=1"); code != 0 {
		t.Fatalf("poison child failed (exit %d)", code)
	}
	acked, err := crashtest.ReadProgress(dir)
	if err != nil {
		t.Fatal(err)
	}
	if acked != crashtest.EnospcAckedBefore {
		t.Fatalf("child acked %d inserts, want %d", acked, crashtest.EnospcAckedBefore)
	}
	db, err := apollo.OpenDir(dir, crashtest.Config("always"))
	if err != nil {
		t.Fatalf("recovery after poison failed: %v", err)
	}
	defer db.Close()
	// The rejected insert's WAL record may or may not be on disk (the fsync
	// failed, but the pages might have made it); both are sound because it
	// was never acknowledged. K beyond acked+1 would be a phantom.
	k, err := crashtest.VerifyContiguousPrefix(db, acked, acked+1)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered database is a fresh writer: the poison died with the
	// old process, so writes work again.
	tbl, err := db.Table("k")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(apollo.Row{apollo.NewInt(int64(k + 1)), apollo.NewString("post-restart")}); err != nil {
		t.Fatalf("insert after restart: %v", err)
	}
	if h := db.Health(); h.Mode != apollo.ModeHealthy {
		t.Fatalf("restarted database health: %v", h.Mode)
	}
}
